use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{FieldId, ModelError, Schema};

/// A packet: one value per schema field, in schema order (§3.1's `d`-tuple).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fw_model::ModelError> {
/// use fw_model::{Packet, Schema};
///
/// let schema = Schema::tcp_ip();
/// let p = Packet::new(vec![0x0A00_0001, 0xC0A8_0001, 49152, 443, 6]);
/// p.validate(&schema)?;
/// assert_eq!(p.get(fw_model::FieldId(3)), Some(443));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    values: Vec<u64>,
}

impl Packet {
    /// Creates a packet from field values in schema order.
    pub fn new(values: Vec<u64>) -> Self {
        Packet { values }
    }

    /// The value of field `id`, or `None` if out of range.
    pub fn get(&self, id: FieldId) -> Option<u64> {
        self.values.get(id.index()).copied()
    }

    /// The value of field `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn value(&self, id: FieldId) -> u64 {
        self.values[id.index()]
    }

    /// All field values in schema order.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Number of fields in the packet.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the packet carries no fields.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Checks the packet against a schema: right arity, every value inside
    /// its field's domain.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] or [`ModelError::OutOfDomain`].
    pub fn validate(&self, schema: &Schema) -> Result<(), ModelError> {
        if self.values.len() != schema.len() {
            return Err(ModelError::ArityMismatch {
                expected: schema.len(),
                found: self.values.len(),
            });
        }
        for (id, field) in schema.iter() {
            let v = self.values[id.index()];
            if v > field.max() {
                return Err(ModelError::OutOfDomain {
                    field: field.name().to_owned(),
                    value: v,
                    max: field.max(),
                });
            }
        }
        Ok(())
    }
}

impl From<Vec<u64>> for Packet {
    fn from(values: Vec<u64>) -> Self {
        Packet::new(values)
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_arity_and_domain() {
        let schema = Schema::paper_example();
        assert!(Packet::new(vec![0, 1, 2, 3, 1]).validate(&schema).is_ok());
        assert!(matches!(
            Packet::new(vec![0, 1, 2]).validate(&schema),
            Err(ModelError::ArityMismatch {
                expected: 5,
                found: 3
            })
        ));
        assert!(matches!(
            Packet::new(vec![2, 1, 2, 3, 1]).validate(&schema),
            Err(ModelError::OutOfDomain { .. })
        ));
    }

    #[test]
    fn accessors() {
        let p = Packet::new(vec![10, 20, 30]);
        assert_eq!(p.get(FieldId(1)), Some(20));
        assert_eq!(p.get(FieldId(9)), None);
        assert_eq!(p.value(FieldId(2)), 30);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn display_tuple() {
        assert_eq!(Packet::new(vec![1, 2, 3]).to_string(), "(1, 2, 3)");
    }
}
