//! The paper's running example (§2): the requirement specification, the two
//! team firewalls of Tables 1 and 2, and the constants used throughout the
//! worked examples and tests.
//!
//! The specification reads: *"The mail server with IP address 192.168.0.1
//! can receive e-mail packets. The packets from an outside malicious domain
//! 224.168.0.0/16 should be blocked. Other packets should be accepted and
//! allowed to proceed."*

use crate::{Firewall, Schema};

/// IP of the mail server, 192.168.0.1 as an integer (the paper's `γ`).
pub const MAIL_SERVER: u64 = 0xC0A8_0001;

/// First address of the malicious domain 224.168.0.0/16 (the paper's `α`).
pub const MALICIOUS_LO: u64 = 0xE0A8_0000;

/// Last address of the malicious domain 224.168.0.0/16 (the paper's `β`).
pub const MALICIOUS_HI: u64 = 0xE0A8_FFFF;

/// SMTP port used by the example rules.
pub const SMTP: u64 = 25;

/// Protocol value for TCP in the simplified two-protocol example.
pub const TCP: u64 = 0;

/// Protocol value for UDP in the simplified two-protocol example.
pub const UDP: u64 = 1;

/// The paper's Table 1 firewall (Team A) over [`Schema::paper_example`]:
///
/// * `r1`: `iface=0 ∧ dst=192.168.0.1 ∧ dport=25 ∧ proto=TCP → accept`
/// * `r2`: `iface=0 ∧ src ∈ 224.168.0.0/16 → discard`
/// * `r3`: `* → accept`
pub fn team_a() -> Firewall {
    Firewall::parse(
        Schema::paper_example(),
        "iface=0, dst=192.168.0.1, dport=25, proto=0 -> accept\n\
         iface=0, src=224.168.0.0/16 -> discard\n\
         * -> accept\n",
    )
    .expect("static example parses")
}

/// The paper's Table 2 firewall (Team B) over [`Schema::paper_example`]:
///
/// * `r1`: `iface=0 ∧ src ∈ 224.168.0.0/16 → discard`
/// * `r2`: `iface=0 ∧ dst=192.168.0.1 ∧ dport=25 ∧ proto=TCP → accept`
/// * `r3`: `iface=0 ∧ dst=192.168.0.1 → discard`
/// * `r4`: `* → accept`
pub fn team_b() -> Firewall {
    Firewall::parse(
        Schema::paper_example(),
        "iface=0, src=224.168.0.0/16 -> discard\n\
         iface=0, dst=192.168.0.1, dport=25, proto=0 -> accept\n\
         iface=0, dst=192.168.0.1 -> discard\n\
         * -> accept\n",
    )
    .expect("static example parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_dotted_quads() {
        assert_eq!(MAIL_SERVER, (192 << 24) | (168 << 16) | 1);
        assert_eq!(MALICIOUS_LO, (224 << 24) | (168 << 16));
        assert_eq!(MALICIOUS_HI, MALICIOUS_LO + 0xFFFF);
    }

    #[test]
    fn table_sizes() {
        assert_eq!(team_a().len(), 3);
        assert_eq!(team_b().len(), 4);
    }
}
