//! A small human-readable rule DSL, mirroring how the paper presents rules
//! (Tables 1–7): one rule per line, unconstrained fields elided, IP fields
//! in dotted-quad or prefix notation.
//!
//! # Grammar
//!
//! ```text
//! firewall   := (line '\n')*
//! line       := comment | rule
//! comment    := '#' ...
//! rule       := predicate '->' decision
//! predicate  := '*' | constraint (',' constraint)*
//! constraint := field '=' valueset
//! valueset   := value ('|' value)*
//! value      := '*' | int | int '-' int | ipv4 | ipv4 '/' plen | ipv4 '-' ipv4
//! decision   := 'accept' | 'discard' | 'accept-log' | 'discard-log' | aliases
//! ```
//!
//! Whitespace around tokens is ignored. Fields may appear in any order; each
//! at most once per rule. [`crate::Firewall::to_dsl`] emits this format, so
//! policies round-trip through text.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), fw_model::ModelError> {
//! use fw_model::{parse::parse_rules, Schema};
//!
//! let rules = parse_rules(
//!     &Schema::tcp_ip(),
//!     "# block some well-known bad ports
//!      dport=135-139|445, proto=6 -> discard-log
//!      * -> accept",
//! )?;
//! assert_eq!(rules.len(), 2);
//! # Ok(())
//! # }
//! ```

use crate::prefix::parse_ipv4;
use crate::{
    Decision, FieldId, Interval, IntervalSet, ModelError, Predicate, Prefix, Rule, Schema,
};

/// Parses a sequence of rules in the DSL, one per line; blank lines and
/// `#`-comments are skipped.
///
/// # Errors
///
/// Returns [`ModelError::Parse`] carrying the 1-based line number of the
/// first offending line, or a validation error from predicate construction.
pub fn parse_rules(schema: &Schema, text: &str) -> Result<Vec<Rule>, ModelError> {
    let mut rules = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        // `#` starts a comment, whether at line start or trailing a rule.
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        rules.push(parse_rule_line(schema, line, line_no)?);
    }
    Ok(rules)
}

/// Parses a single rule in the DSL (no trailing newline).
///
/// # Errors
///
/// As for [`parse_rules`], with line number 1.
pub fn parse_rule(schema: &Schema, line: &str) -> Result<Rule, ModelError> {
    parse_rule_line(schema, line.trim(), 1)
}

fn err(line: usize, message: impl Into<String>) -> ModelError {
    ModelError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_rule_line(schema: &Schema, line: &str, line_no: usize) -> Result<Rule, ModelError> {
    let (pred_text, dec_text) = line
        .rsplit_once("->")
        .ok_or_else(|| err(line_no, "expected `predicate -> decision`"))?;
    let decision: Decision = dec_text.trim().parse().map_err(|e: ModelError| match e {
        ModelError::Parse { message, .. } => err(line_no, message),
        other => other,
    })?;
    let predicate = parse_predicate(schema, pred_text.trim(), line_no)?;
    Ok(Rule::new(predicate, decision))
}

fn parse_predicate(schema: &Schema, text: &str, line_no: usize) -> Result<Predicate, ModelError> {
    if text == "*" {
        return Ok(Predicate::any(schema));
    }
    if text.is_empty() {
        return Err(err(
            line_no,
            "empty predicate; use `*` to match all packets",
        ));
    }
    let mut pred = Predicate::any(schema);
    let mut seen: Vec<FieldId> = Vec::new();
    for part in text.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(err(line_no, "empty constraint between commas"));
        }
        let (name, value) = part
            .split_once('=')
            .ok_or_else(|| err(line_no, format!("expected `field=value` in `{part}`")))?;
        let name = name.trim();
        let (id, field) = schema
            .field_by_name(name)
            .ok_or_else(|| err(line_no, format!("unknown field `{name}`")))?;
        if seen.contains(&id) {
            return Err(err(line_no, format!("field `{name}` constrained twice")));
        }
        seen.push(id);
        let set = parse_value_set(value.trim(), field.bits(), line_no)?;
        if let Some(max) = set.max_value() {
            if max > field.max() {
                return Err(ModelError::OutOfDomain {
                    field: name.to_owned(),
                    value: max,
                    max: field.max(),
                });
            }
        }
        pred = pred.with_field(id, set)?;
    }
    Ok(pred)
}

fn parse_value_set(text: &str, bits: u32, line_no: usize) -> Result<IntervalSet, ModelError> {
    let mut intervals = Vec::new();
    for alt in text.split('|') {
        let alt = alt.trim();
        if alt.is_empty() {
            return Err(err(line_no, "empty alternative between `|`"));
        }
        intervals.push(parse_value(alt, bits, line_no)?);
    }
    Ok(IntervalSet::from_intervals(intervals))
}

fn parse_value(text: &str, bits: u32, line_no: usize) -> Result<Interval, ModelError> {
    if text == "*" {
        let max = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        return Interval::new(0, max);
    }
    // Prefix notation `base/plen`, where base may be dotted-quad or integer.
    if let Some((base, plen)) = text.split_once('/') {
        let v = parse_scalar(base.trim(), line_no)?;
        let plen: u32 = plen
            .trim()
            .parse()
            .map_err(|_| err(line_no, format!("invalid prefix length `{plen}`")))?;
        return Ok(Prefix::new(v, plen, bits)?.interval());
    }
    // Range `lo-hi` (dotted quads contain '.', so a '-' separating two
    // dotted quads is unambiguous; plain integers contain no '-').
    if let Some((lo, hi)) = text.split_once('-') {
        let lo = parse_scalar(lo.trim(), line_no)?;
        let hi = parse_scalar(hi.trim(), line_no)?;
        return Interval::new(lo, hi);
    }
    let v = parse_scalar(text, line_no)?;
    Ok(Interval::point(v))
}

fn parse_scalar(text: &str, line_no: usize) -> Result<u64, ModelError> {
    if text.contains('.') {
        parse_ipv4(text).map_err(|e| match e {
            ModelError::Parse { message, .. } => err(line_no, message),
            other => other,
        })
    } else {
        text.parse::<u64>()
            .map_err(|_| err(line_no, format!("invalid integer `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::paper_example()
    }

    #[test]
    fn parses_star_rule() {
        let r = parse_rule(&schema(), "* -> accept").unwrap();
        assert!(r.predicate().is_any(&schema()));
        assert_eq!(r.decision(), Decision::Accept);
    }

    #[test]
    fn parses_fields_in_any_order() {
        let a = parse_rule(&schema(), "dport=25, iface=0 -> discard").unwrap();
        let b = parse_rule(&schema(), "iface=0, dport=25 -> discard").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parses_ip_forms() {
        let r = parse_rule(&schema(), "src=224.168.0.0/16 -> discard").unwrap();
        let s = r.predicate().set(FieldId(1));
        assert_eq!(
            s.as_single_interval().unwrap(),
            Interval::new(0xE0A8_0000, 0xE0A8_FFFF).unwrap()
        );

        let r = parse_rule(&schema(), "src=10.0.0.1 -> accept").unwrap();
        assert_eq!(
            r.predicate().set(FieldId(1)),
            &IntervalSet::from_value(0x0A00_0001)
        );

        let r = parse_rule(&schema(), "src=10.0.0.1-10.0.0.9 -> accept").unwrap();
        assert_eq!(
            r.predicate().set(FieldId(1)).as_single_interval().unwrap(),
            Interval::new(0x0A00_0001, 0x0A00_0009).unwrap()
        );
    }

    #[test]
    fn parses_unions_and_ranges() {
        let r = parse_rule(&schema(), "dport=25|80|1024-2047 -> accept").unwrap();
        let s = r.predicate().set(FieldId(3));
        assert!(s.contains(25) && s.contains(80) && s.contains(1500));
        assert!(!s.contains(26) && !s.contains(2048));
        assert_eq!(s.run_count(), 3);
    }

    #[test]
    fn parses_star_value_for_one_field() {
        let r = parse_rule(&schema(), "dport=*, iface=1 -> accept").unwrap();
        assert!(r
            .predicate()
            .set(FieldId(3))
            .covers(Interval::new(0, 65535).unwrap()));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "accept",                     // no arrow
            "-> accept",                  // empty predicate
            "iface -> accept",            // no '='
            "iface=0 iface=1 -> accept",  // missing comma => bad value
            "iface=0, iface=1 -> accept", // duplicate field
            "nosuch=3 -> accept",         // unknown field
            "iface=5 -> accept",          // out of domain
            "dport=9-2 -> accept",        // inverted interval
            "dport=| -> accept",          // empty alternative
            "* -> reject",                // unknown decision
            "src=1.2.3.4.5 -> accept",    // bad IP
        ] {
            assert!(parse_rule(&schema(), bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn line_numbers_reported() {
        let text = "* -> accept\nwat\n";
        match parse_rules(&schema(), text) {
            Err(ModelError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let rules = parse_rules(
            &schema(),
            "\n# heading\n   \niface=0 -> discard\n# tail\n* -> accept\n",
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn trailing_comments_stripped() {
        let rules = parse_rules(
            &schema(),
            "iface=0 -> discard   # block inbound\n* -> accept# default\n",
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[1].decision(), Decision::Accept);
    }

    #[test]
    fn prefix_zero_over_integer_field() {
        let r = parse_rule(&schema(), "dport=0/0 -> accept").unwrap();
        assert!(r
            .predicate()
            .set(FieldId(3))
            .covers(Interval::new(0, 65535).unwrap()));
    }
}
