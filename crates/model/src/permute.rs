//! Field-order permutation (paper §7.2).
//!
//! The shaping algorithm requires both FDDs to be *ordered the same way*.
//! When two teams design ordered FDDs over different field orders, the
//! paper's recipe is: generate a rule sequence from one diagram, then
//! rebuild it as an FDD using the other diagram's order. The missing
//! primitive is re-expressing a policy over a permuted schema — fields are
//! identified by position, so rules, packets and schemas must be permuted
//! together. Field order never changes a policy's *semantics* (a predicate
//! is a conjunction), but it can change FDD sizes dramatically, which the
//! `field_order` ablation bench measures.

use crate::{FieldDef, Firewall, ModelError, Packet, Predicate, Rule, Schema};

/// A permutation of field positions: `perm[new_position] = old_position`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldPermutation {
    perm: Vec<usize>,
}

impl FieldPermutation {
    /// Creates a permutation from `perm[new] = old`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidFirewall`] unless `perm` is a
    /// permutation of `0..perm.len()`.
    pub fn new(perm: Vec<usize>) -> Result<Self, ModelError> {
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            if p >= perm.len() || seen[p] {
                return Err(ModelError::InvalidFirewall {
                    message: format!("{perm:?} is not a permutation of 0..{}", perm.len()),
                });
            }
            seen[p] = true;
        }
        Ok(FieldPermutation { perm })
    }

    /// The identity permutation over `len` fields.
    pub fn identity(len: usize) -> Self {
        FieldPermutation {
            perm: (0..len).collect(),
        }
    }

    /// The reversal permutation over `len` fields.
    pub fn reversed(len: usize) -> Self {
        FieldPermutation {
            perm: (0..len).rev().collect(),
        }
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> FieldPermutation {
        let mut inv = vec![0usize; self.perm.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            inv[old] = new;
        }
        FieldPermutation { perm: inv }
    }

    /// Number of fields the permutation covers.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the permutation covers zero fields.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The old position a new position maps from.
    pub fn old_position(&self, new: usize) -> usize {
        self.perm[new]
    }

    /// Applies the permutation to a schema.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] if the lengths differ.
    pub fn apply_schema(&self, schema: &Schema) -> Result<Schema, ModelError> {
        if schema.len() != self.perm.len() {
            return Err(ModelError::ArityMismatch {
                expected: self.perm.len(),
                found: schema.len(),
            });
        }
        let fields: Vec<FieldDef> = self
            .perm
            .iter()
            .map(|&old| schema.field(crate::FieldId(old)).clone())
            .collect();
        Schema::new(fields)
    }

    /// Applies the permutation to a packet (values follow their fields).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] if the lengths differ.
    pub fn apply_packet(&self, packet: &Packet) -> Result<Packet, ModelError> {
        if packet.len() != self.perm.len() {
            return Err(ModelError::ArityMismatch {
                expected: self.perm.len(),
                found: packet.len(),
            });
        }
        Ok(Packet::new(
            self.perm.iter().map(|&old| packet.values()[old]).collect(),
        ))
    }

    /// Applies the permutation to a whole firewall, producing an equivalent
    /// policy over the permuted schema: for every packet `p`,
    /// `fw.decision_for(p) == permuted.decision_for(perm(p))`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] if the schema width differs.
    pub fn apply_firewall(&self, fw: &Firewall) -> Result<Firewall, ModelError> {
        let schema = self.apply_schema(fw.schema())?;
        let rules: Vec<Rule> = fw
            .rules()
            .iter()
            .map(|r| {
                let sets = self
                    .perm
                    .iter()
                    .map(|&old| r.predicate().set(crate::FieldId(old)).clone())
                    .collect();
                Rule::new(Predicate::from_sets_unchecked(sets), r.decision())
            })
            .collect();
        Firewall::new(schema, rules)
    }
}

impl Firewall {
    /// Re-expresses the policy over a permuted field order (§7.2); see
    /// [`FieldPermutation::apply_firewall`].
    ///
    /// # Errors
    ///
    /// As for [`FieldPermutation::apply_firewall`].
    pub fn permute_fields(&self, perm: &FieldPermutation) -> Result<Firewall, ModelError> {
        perm.apply_firewall(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn permutation_validation() {
        assert!(FieldPermutation::new(vec![0, 2, 1]).is_ok());
        assert!(FieldPermutation::new(vec![0, 0, 1]).is_err());
        assert!(FieldPermutation::new(vec![0, 3]).is_err());
    }

    #[test]
    fn inverse_round_trips() {
        let p = FieldPermutation::new(vec![2, 0, 1]).unwrap();
        let inv = p.inverse();
        let id = FieldPermutation::identity(3);
        // Applying p then inv to a packet restores it.
        let packet = Packet::new(vec![10, 20, 30]);
        let there = p.apply_packet(&packet).unwrap();
        let back = inv.apply_packet(&there).unwrap();
        assert_eq!(back, packet);
        assert_eq!(id.apply_packet(&packet).unwrap(), packet);
    }

    #[test]
    fn permuted_firewall_is_semantically_consistent() {
        let fw = paper::team_b();
        let perm = FieldPermutation::reversed(fw.schema().len());
        let permuted = fw.permute_fields(&perm).unwrap();
        assert_eq!(permuted.schema().field(crate::FieldId(0)).name(), "proto");
        for p in fw.witnesses() {
            let q = perm.apply_packet(&p).unwrap();
            assert_eq!(fw.decision_for(&p), permuted.decision_for(&q), "at {p}");
        }
    }

    #[test]
    fn schema_permutation_keeps_fields() {
        let s = Schema::paper_example();
        let perm = FieldPermutation::new(vec![4, 3, 2, 1, 0]).unwrap();
        let t = perm.apply_schema(&s).unwrap();
        assert_eq!(t.field(crate::FieldId(4)).name(), "iface");
        assert_eq!(t.total_bits(), s.total_bits());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let fw = paper::team_a();
        let perm = FieldPermutation::identity(3);
        assert!(fw.permute_fields(&perm).is_err());
    }
}
