use serde::{Deserialize, Serialize};

use crate::{FieldId, IntervalSet, ModelError, Packet, Schema};

/// A rule predicate: `F1 ∈ S1 ∧ … ∧ Fd ∈ Sd`, one value set per field.
///
/// Per §3.1, every field appears in every predicate (an unconstrained field
/// is `Fi ∈ D(Fi)`). A predicate is **simple** when every `Si` is a single
/// interval — the construction algorithm accepts general predicates, but the
/// paper's Theorem 1 path bound and most real configurations concern simple
/// rules.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fw_model::ModelError> {
/// use fw_model::{FieldId, Interval, Packet, Predicate, Schema};
///
/// let schema = Schema::tcp_ip();
/// let web = Predicate::any(&schema)
///     .with_field(FieldId(3), Interval::new(80, 80)?.into())?;
/// assert!(web.matches(&Packet::new(vec![1, 2, 3, 80, 6])));
/// assert!(!web.matches(&Packet::new(vec![1, 2, 3, 81, 6])));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    sets: Vec<IntervalSet>,
}

impl Predicate {
    /// The predicate matching **every** packet of `schema` (each field
    /// constrained to its full domain).
    pub fn any(schema: &Schema) -> Self {
        Predicate {
            sets: schema
                .iter()
                .map(|(_, f)| IntervalSet::from_interval(f.domain()))
                .collect(),
        }
    }

    /// Builds a predicate from one value set per field, in schema order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] on a wrong field count,
    /// [`ModelError::EmptyPredicateField`] if some set is empty, and
    /// [`ModelError::OutOfDomain`] if some set leaves its field's domain.
    pub fn new(schema: &Schema, sets: Vec<IntervalSet>) -> Result<Self, ModelError> {
        if sets.len() != schema.len() {
            return Err(ModelError::ArityMismatch {
                expected: schema.len(),
                found: sets.len(),
            });
        }
        for (id, field) in schema.iter() {
            let s = &sets[id.index()];
            if s.is_empty() {
                return Err(ModelError::EmptyPredicateField {
                    field: field.name().to_owned(),
                });
            }
            if let Some(max) = s.max_value() {
                if max > field.max() {
                    return Err(ModelError::OutOfDomain {
                        field: field.name().to_owned(),
                        value: max,
                        max: field.max(),
                    });
                }
            }
        }
        Ok(Predicate { sets })
    }

    /// Returns a copy with field `id` constrained to `set`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownField`] if `id` is out of range and
    /// [`ModelError::EmptyPredicateField`] if `set` is empty.
    pub fn with_field(&self, id: FieldId, set: IntervalSet) -> Result<Self, ModelError> {
        if id.index() >= self.sets.len() {
            return Err(ModelError::UnknownField {
                name: id.to_string(),
            });
        }
        if set.is_empty() {
            return Err(ModelError::EmptyPredicateField {
                field: id.to_string(),
            });
        }
        let mut sets = self.sets.clone();
        sets[id.index()] = set;
        Ok(Predicate { sets })
    }

    /// The value set of field `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set(&self, id: FieldId) -> &IntervalSet {
        &self.sets[id.index()]
    }

    /// All per-field value sets in schema order.
    pub fn sets(&self) -> &[IntervalSet] {
        &self.sets
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.sets.len()
    }

    /// Whether the packet satisfies `p1 ∈ S1 ∧ … ∧ pd ∈ Sd`.
    pub fn matches(&self, packet: &Packet) -> bool {
        packet.len() == self.sets.len()
            && self
                .sets
                .iter()
                .enumerate()
                .all(|(i, s)| s.contains(packet.value(FieldId(i))))
    }

    /// Whether every `Si` is one single interval (a *simple* rule predicate,
    /// §3.1).
    pub fn is_simple(&self) -> bool {
        self.sets.iter().all(|s| s.as_single_interval().is_some())
    }

    /// Whether the predicate matches every packet of `schema`.
    pub fn is_any(&self, schema: &Schema) -> bool {
        self.arity() == schema.len()
            && schema
                .iter()
                .all(|(id, f)| self.sets[id.index()].covers(f.domain()))
    }

    /// The field-wise intersection `self ∧ other`, or `None` if some field's
    /// intersection is empty (the predicates match disjoint packet sets).
    pub fn intersect(&self, other: &Predicate) -> Option<Predicate> {
        if self.sets.len() != other.sets.len() {
            return None;
        }
        let mut sets = Vec::with_capacity(self.sets.len());
        for (a, b) in self.sets.iter().zip(&other.sets) {
            let c = a.intersect(b);
            if c.is_empty() {
                return None;
            }
            sets.push(c);
        }
        Some(Predicate { sets })
    }

    /// Whether every packet matching `self` also matches `other`.
    pub fn is_subset_of(&self, other: &Predicate) -> bool {
        self.sets.len() == other.sets.len()
            && self
                .sets
                .iter()
                .zip(&other.sets)
                .all(|(a, b)| a.is_subset_of(b))
    }

    /// Number of packets matched, saturating at `u128::MAX`.
    pub fn count(&self) -> u128 {
        self.sets
            .iter()
            .fold(1u128, |acc, s| acc.saturating_mul(s.count()))
    }

    /// One witness packet matching the predicate.
    ///
    /// Predicates are non-empty by construction, so this always succeeds for
    /// a validly constructed predicate.
    pub fn witness(&self) -> Packet {
        Packet::new(
            self.sets
                .iter()
                .map(|s| s.any_value().unwrap_or(0))
                .collect(),
        )
    }

    /// Decomposes a general predicate into simple (single-interval-per-field)
    /// predicates whose union is exactly `self`.
    ///
    /// The output has `∏ run_count(Si)` entries — this is how a general rule
    /// is lowered to the simple rules that hardware and most firewall
    /// software accept.
    pub fn to_simple_predicates(&self) -> Vec<Predicate> {
        let mut out: Vec<Vec<IntervalSet>> = vec![Vec::new()];
        for s in &self.sets {
            let mut next = Vec::with_capacity(out.len() * s.run_count());
            for prefix in &out {
                for iv in s.iter() {
                    let mut p = prefix.clone();
                    p.push(IntervalSet::from_interval(*iv));
                    next.push(p);
                }
            }
            out = next;
        }
        out.into_iter().map(|sets| Predicate { sets }).collect()
    }

    /// Per-field domains as intervals, for the paper-style display of a
    /// predicate over a specific schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DisplayPredicate<'a> {
        DisplayPredicate {
            predicate: self,
            schema,
        }
    }
}

/// Helper returned by [`Predicate::display`]: formats the predicate with
/// field names, eliding unconstrained fields and rendering 32-bit fields
/// in IP notation, e.g. `iface=0, src=224.168.0.0/16`.
#[derive(Debug)]
pub struct DisplayPredicate<'a> {
    predicate: &'a Predicate,
    schema: &'a Schema,
}

impl std::fmt::Display for DisplayPredicate<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut wrote = false;
        for (id, field) in self.schema.iter() {
            let s = self.predicate.set(id);
            if s.covers(field.domain()) {
                continue;
            }
            if wrote {
                write!(f, ", ")?;
            }
            write!(f, "{}=", field.name())?;
            if field.bits() == 32 {
                fmt_ip_set(f, s)?;
            } else {
                write!(f, "{s}")?;
            }
            wrote = true;
        }
        if !wrote {
            write!(f, "*")?;
        }
        Ok(())
    }
}

/// Renders a 32-bit field's value set in the notation administrators read
/// (§7.1's output conversion): a prefix (`224.168.0.0/16`) when a run is
/// prefix-aligned, a bare dotted quad for single addresses, and a dotted
/// range otherwise; runs joined with `|`. The DSL parser accepts every
/// form, so `Display` output still round-trips.
fn fmt_ip_set(f: &mut std::fmt::Formatter<'_>, s: &IntervalSet) -> std::fmt::Result {
    use crate::prefix::{format_ipv4, interval_to_prefixes};
    for (i, iv) in s.iter().enumerate() {
        if i > 0 {
            write!(f, "|")?;
        }
        match interval_to_prefixes(*iv, 32) {
            Ok(ps) if ps.len() == 1 => {
                let p = ps[0];
                if p.plen() == 32 {
                    write!(f, "{}", format_ipv4(p.value()))?;
                } else {
                    write!(f, "{p}")?;
                }
            }
            _ => {
                write!(f, "{}-{}", format_ipv4(iv.lo()), format_ipv4(iv.hi()))?;
            }
        }
    }
    Ok(())
}

/// A convenience alias used across the workspace: a predicate where every
/// field is one interval, i.e. an axis-aligned hyper-rectangle of packets.
pub type PacketBox = Predicate;

impl Predicate {
    /// Internal constructor for trusted (already-validated) sets; used by the
    /// FDD algorithms which maintain the invariants themselves.
    #[doc(hidden)]
    pub fn from_sets_unchecked(sets: Vec<IntervalSet>) -> Self {
        debug_assert!(sets.iter().all(|s| !s.is_empty()));
        Predicate { sets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interval;

    fn schema() -> Schema {
        Schema::paper_example()
    }

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn any_matches_everything() {
        let s = schema();
        let p = Predicate::any(&s);
        assert!(p.is_any(&s));
        assert!(p.is_simple());
        assert!(p.matches(&Packet::new(vec![1, u64::from(u32::MAX), 0, 65535, 0])));
    }

    #[test]
    fn new_validates() {
        let s = schema();
        let bad_arity = Predicate::new(&s, vec![IntervalSet::from_value(0)]);
        assert!(matches!(bad_arity, Err(ModelError::ArityMismatch { .. })));

        let mut sets: Vec<IntervalSet> = s
            .iter()
            .map(|(_, f)| IntervalSet::from_interval(f.domain()))
            .collect();
        sets[0] = IntervalSet::empty();
        assert!(matches!(
            Predicate::new(&s, sets.clone()),
            Err(ModelError::EmptyPredicateField { .. })
        ));

        sets[0] = IntervalSet::from_value(7); // iface domain is [0,1]
        assert!(matches!(
            Predicate::new(&s, sets),
            Err(ModelError::OutOfDomain { .. })
        ));
    }

    #[test]
    fn with_field_and_matches() {
        let s = schema();
        let p = Predicate::any(&s)
            .with_field(FieldId(0), IntervalSet::from_value(0))
            .unwrap()
            .with_field(FieldId(3), IntervalSet::from_value(25))
            .unwrap();
        assert!(p.matches(&Packet::new(vec![0, 1, 2, 25, 0])));
        assert!(!p.matches(&Packet::new(vec![1, 1, 2, 25, 0])));
        assert!(!p.matches(&Packet::new(vec![0, 1, 2, 80, 0])));
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let s = schema();
        let a = Predicate::any(&s)
            .with_field(FieldId(3), IntervalSet::from_value(25))
            .unwrap();
        let b = Predicate::any(&s)
            .with_field(FieldId(3), IntervalSet::from_value(80))
            .unwrap();
        assert!(a.intersect(&b).is_none());
        let c = Predicate::any(&s)
            .with_field(FieldId(3), IntervalSet::from_interval(iv(0, 100)))
            .unwrap();
        let i = a.intersect(&c).unwrap();
        assert_eq!(i.set(FieldId(3)), &IntervalSet::from_value(25));
    }

    #[test]
    fn subset_and_count() {
        let s = schema();
        let narrow = Predicate::any(&s)
            .with_field(FieldId(0), IntervalSet::from_value(0))
            .unwrap()
            .with_field(FieldId(4), IntervalSet::from_value(1))
            .unwrap();
        assert!(narrow.is_subset_of(&Predicate::any(&s)));
        assert!(!Predicate::any(&s).is_subset_of(&narrow));
        assert_eq!(narrow.count(), (1u128 << 32) * (1 << 32) * (1 << 16));
    }

    #[test]
    fn witness_matches_self() {
        let s = schema();
        let p = Predicate::any(&s)
            .with_field(FieldId(1), IntervalSet::from_interval(iv(100, 200)))
            .unwrap();
        assert!(p.matches(&p.witness()));
    }

    #[test]
    fn to_simple_predicates_cross_product() {
        let s = schema();
        let p = Predicate::any(&s)
            .with_field(
                FieldId(3),
                IntervalSet::from_intervals(vec![iv(25, 25), iv(80, 80), iv(443, 443)]),
            )
            .unwrap()
            .with_field(
                FieldId(0),
                IntervalSet::from_intervals(vec![iv(0, 0), iv(1, 1)]),
            )
            .unwrap();
        // iface intervals merge to one run [0,1]; dport has 3 runs.
        let simple = p.to_simple_predicates();
        assert_eq!(simple.len(), 3);
        assert!(simple.iter().all(Predicate::is_simple));
        // Union of the parts covers the original.
        for sp in &simple {
            assert!(sp.is_subset_of(&p));
        }
    }

    #[test]
    fn display_elides_full_domains() {
        let s = schema();
        let p = Predicate::any(&s)
            .with_field(FieldId(0), IntervalSet::from_value(0))
            .unwrap()
            .with_field(FieldId(3), IntervalSet::from_value(25))
            .unwrap();
        assert_eq!(p.display(&s).to_string(), "iface=0, dport=25");
        assert_eq!(Predicate::any(&s).display(&s).to_string(), "*");
    }
}
