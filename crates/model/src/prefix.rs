//! Prefix ↔ interval conversion (paper §7.1).
//!
//! Real firewall rules give IP fields in prefix notation (`192.168.0.0/16`)
//! and port/protocol fields as integer intervals. The paper's pipeline
//! converts prefixes to intervals on the way in (each prefix is exactly one
//! interval), runs the three FDD algorithms on intervals, and converts the
//! computed discrepancies back to prefixes on the way out so administrators
//! read familiar notation. A `w`-bit interval converts back to **at most
//! `2w − 2` prefixes** (Gupta & McKeown), a bound
//! [`interval_to_prefixes`] meets and the property tests verify.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Interval, IntervalSet, ModelError};

/// A bit prefix over a `bits`-wide field: the set of values whose top
/// `plen` bits equal those of `value`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fw_model::ModelError> {
/// use fw_model::Prefix;
///
/// let p = Prefix::new(0xC0A8_0000, 16, 32)?; // 192.168.0.0/16
/// let iv = p.interval();
/// assert_eq!(iv.lo(), 0xC0A8_0000);
/// assert_eq!(iv.hi(), 0xC0A8_FFFF);
/// assert_eq!(p.to_string(), "192.168.0.0/16");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Prefix {
    value: u64,
    plen: u32,
    bits: u32,
}

impl Prefix {
    /// Creates the prefix `value/plen` over a `bits`-wide field. Bits of
    /// `value` below the prefix length are cleared.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPrefixLen`] if `plen > bits`, and
    /// [`ModelError::InvalidFieldBits`] if `bits` is outside `1..=64`.
    pub fn new(value: u64, plen: u32, bits: u32) -> Result<Self, ModelError> {
        if bits == 0 || bits > 64 {
            return Err(ModelError::InvalidFieldBits {
                name: "<prefix>".to_owned(),
                bits,
            });
        }
        if plen > bits {
            return Err(ModelError::InvalidPrefixLen { plen, bits });
        }
        let host_bits = bits - plen;
        let masked = if host_bits >= 64 {
            0
        } else {
            (value >> host_bits) << host_bits
        };
        // Also clear anything above the field width.
        let masked = if bits == 64 {
            masked
        } else {
            masked & ((1u64 << bits) - 1)
        };
        Ok(Prefix {
            value: masked,
            plen,
            bits,
        })
    }

    /// The prefix value (low `bits − plen` bits are zero).
    pub fn value(self) -> u64 {
        self.value
    }

    /// The prefix length.
    pub fn plen(self) -> u32 {
        self.plen
    }

    /// The field width in bits.
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The interval of values covered by the prefix. Every prefix is exactly
    /// one interval (§7.1).
    pub fn interval(self) -> Interval {
        let host_bits = self.bits - self.plen;
        let span = if host_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << host_bits) - 1
        };
        Interval::new(self.value, self.value | span).expect("prefix bounds are ordered")
    }

    /// Whether `v` matches the prefix.
    pub fn contains(self, v: u64) -> bool {
        self.interval().contains(v)
    }
}

impl fmt::Display for Prefix {
    /// 32-bit prefixes print as dotted quads (`192.168.0.0/16`); other
    /// widths print as `value/plen`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits == 32 {
            let v = self.value;
            write!(
                f,
                "{}.{}.{}.{}/{}",
                (v >> 24) & 0xFF,
                (v >> 16) & 0xFF,
                (v >> 8) & 0xFF,
                v & 0xFF,
                self.plen
            )
        } else {
            write!(f, "{}/{}", self.value, self.plen)
        }
    }
}

/// Converts an interval over a `bits`-wide field into the minimal list of
/// covering prefixes, ascending.
///
/// The classic greedy algorithm: repeatedly emit the largest prefix that
/// starts at the current low end and does not overshoot the high end. The
/// result has at most `2·bits − 2` prefixes for `bits ≥ 2` (§7.1).
///
/// # Errors
///
/// Returns [`ModelError::OutOfDomain`] if the interval exceeds the field
/// domain, and [`ModelError::InvalidFieldBits`] for an unsupported width.
pub fn interval_to_prefixes(iv: Interval, bits: u32) -> Result<Vec<Prefix>, ModelError> {
    if bits == 0 || bits > 64 {
        return Err(ModelError::InvalidFieldBits {
            name: "<prefix>".to_owned(),
            bits,
        });
    }
    let max = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    if iv.hi() > max {
        return Err(ModelError::OutOfDomain {
            field: "<prefix>".to_owned(),
            value: iv.hi(),
            max,
        });
    }
    let mut out = Vec::new();
    let mut lo = iv.lo();
    loop {
        // Largest host-bit count such that the block is aligned at `lo` and
        // fits inside [lo, hi].
        let mut host = lo.trailing_zeros().min(bits);
        loop {
            let span = if host >= 64 {
                u64::MAX
            } else {
                (1u64 << host) - 1
            };
            // Block is [lo, lo + span]; shrink while it overshoots hi.
            if span <= iv.hi().wrapping_sub(lo) {
                break;
            }
            host -= 1;
        }
        let plen = bits - host;
        out.push(Prefix::new(lo, plen, bits)?);
        let span = if host >= 64 {
            u64::MAX
        } else {
            (1u64 << host) - 1
        };
        let block_hi = lo + span;
        if block_hi >= iv.hi() {
            break;
        }
        lo = block_hi + 1;
    }
    Ok(out)
}

/// Converts an [`IntervalSet`] to prefixes by covering each maximal interval
/// independently; ascending overall.
///
/// # Errors
///
/// As for [`interval_to_prefixes`].
pub fn set_to_prefixes(set: &IntervalSet, bits: u32) -> Result<Vec<Prefix>, ModelError> {
    let mut out = Vec::new();
    for &iv in set.iter() {
        out.extend(interval_to_prefixes(iv, bits)?);
    }
    Ok(out)
}

/// Parses a dotted-quad IPv4 address (`a.b.c.d`) to its 32-bit integer.
///
/// # Errors
///
/// Returns [`ModelError::Parse`] on malformed input.
pub fn parse_ipv4(s: &str) -> Result<u64, ModelError> {
    let parts: Vec<&str> = s.split('.').collect();
    if parts.len() != 4 {
        return Err(ModelError::Parse {
            line: 0,
            message: format!("`{s}` is not a dotted-quad IPv4 address"),
        });
    }
    let mut v: u64 = 0;
    for p in parts {
        let octet: u64 = p.parse().map_err(|_| ModelError::Parse {
            line: 0,
            message: format!("`{p}` is not a valid IPv4 octet"),
        })?;
        if octet > 255 {
            return Err(ModelError::Parse {
                line: 0,
                message: format!("IPv4 octet {octet} exceeds 255"),
            });
        }
        v = (v << 8) | octet;
    }
    Ok(v)
}

/// Formats a 32-bit integer as a dotted-quad IPv4 address.
pub fn format_ipv4(v: u64) -> String {
    format!(
        "{}.{}.{}.{}",
        (v >> 24) & 0xFF,
        (v >> 16) & 0xFF,
        (v >> 8) & 0xFF,
        v & 0xFF
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn prefix_interval_round_trip() {
        let p = Prefix::new(0xE0A8_0000, 16, 32).unwrap();
        assert_eq!(p.interval(), iv(0xE0A8_0000, 0xE0A8_FFFF));
        assert_eq!(p.to_string(), "224.168.0.0/16");
        // Host bits in the input value are masked off.
        let q = Prefix::new(0xE0A8_1234, 16, 32).unwrap();
        assert_eq!(q, p);
    }

    #[test]
    fn zero_length_prefix_covers_domain() {
        let p = Prefix::new(99, 0, 8).unwrap();
        assert_eq!(p.interval(), iv(0, 255));
        assert_eq!(p.value(), 0);
    }

    #[test]
    fn full_length_prefix_is_a_point() {
        let p = Prefix::new(42, 8, 8).unwrap();
        assert_eq!(p.interval(), iv(42, 42));
    }

    #[test]
    fn prefix_rejects_bad_lengths() {
        assert!(matches!(
            Prefix::new(0, 9, 8),
            Err(ModelError::InvalidPrefixLen { .. })
        ));
        assert!(matches!(
            Prefix::new(0, 0, 0),
            Err(ModelError::InvalidFieldBits { .. })
        ));
    }

    #[test]
    fn paper_example_interval_2_8_over_4_bits() {
        // §7.1: "the interval [2, 8] can be converted to three prefixes:
        // 001*, 01*, and 1000" (over 4 bits).
        let ps = interval_to_prefixes(iv(2, 8), 4).unwrap();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0], Prefix::new(2, 3, 4).unwrap()); // 001*
        assert_eq!(ps[1], Prefix::new(4, 2, 4).unwrap()); // 01*
        assert_eq!(ps[2], Prefix::new(8, 4, 4).unwrap()); // 1000
    }

    #[test]
    fn conversion_covers_exactly() {
        for (lo, hi) in [(0u64, 255u64), (1, 254), (7, 7), (128, 129), (3, 200)] {
            let ps = interval_to_prefixes(iv(lo, hi), 8).unwrap();
            for v in 0..=255u64 {
                let covered = ps.iter().any(|p| p.contains(v));
                assert_eq!(covered, (lo..=hi).contains(&v), "value {v} for [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn worst_case_meets_2w_minus_2_bound() {
        // [1, 2^w - 2] is the classical worst case: 2w - 2 prefixes.
        for w in [4u32, 8, 16] {
            let hi = (1u64 << w) - 2;
            let ps = interval_to_prefixes(iv(1, hi), w).unwrap();
            assert_eq!(ps.len(), (2 * w - 2) as usize, "width {w}");
        }
    }

    #[test]
    fn full_domain_is_one_prefix() {
        let ps = interval_to_prefixes(iv(0, u64::MAX), 64).unwrap();
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].plen(), 0);
    }

    #[test]
    fn set_to_prefixes_concatenates() {
        let s = IntervalSet::from_intervals(vec![iv(0, 3), iv(8, 11)]);
        let ps = set_to_prefixes(&s, 4).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].interval(), iv(0, 3));
        assert_eq!(ps[1].interval(), iv(8, 11));
    }

    #[test]
    fn ipv4_parse_and_format() {
        assert_eq!(parse_ipv4("192.168.0.1").unwrap(), 0xC0A8_0001);
        assert_eq!(format_ipv4(0xE0A8_0000), "224.168.0.0");
        assert!(parse_ipv4("1.2.3").is_err());
        assert!(parse_ipv4("1.2.3.256").is_err());
        assert!(parse_ipv4("a.b.c.d").is_err());
    }

    #[test]
    fn out_of_domain_interval_rejected() {
        assert!(matches!(
            interval_to_prefixes(iv(0, 300), 8),
            Err(ModelError::OutOfDomain { .. })
        ));
    }
}
