use serde::{Deserialize, Serialize};

use crate::{Decision, ModelError, Packet, Predicate, Schema};

/// A firewall rule `⟨predicate⟩ → ⟨decision⟩` (§1, §3.1).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fw_model::ModelError> {
/// use fw_model::{Decision, FieldId, IntervalSet, Predicate, Rule, Schema};
///
/// let schema = Schema::tcp_ip();
/// let block_telnet = Rule::new(
///     Predicate::any(&schema).with_field(FieldId(3), IntervalSet::from_value(23))?,
///     Decision::DiscardLog,
/// );
/// assert_eq!(block_telnet.decision(), Decision::DiscardLog);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rule {
    predicate: Predicate,
    decision: Decision,
}

impl Rule {
    /// Creates a rule from a predicate and a decision.
    pub fn new(predicate: Predicate, decision: Decision) -> Self {
        Rule {
            predicate,
            decision,
        }
    }

    /// The rule matching every packet of `schema` — the catch-all a
    /// comprehensive firewall ends with (§3.1).
    pub fn catch_all(schema: &Schema, decision: Decision) -> Self {
        Rule {
            predicate: Predicate::any(schema),
            decision,
        }
    }

    /// The rule's predicate.
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }

    /// The rule's decision.
    pub fn decision(&self) -> Decision {
        self.decision
    }

    /// Returns a copy with the decision replaced.
    pub fn with_decision(&self, decision: Decision) -> Rule {
        Rule {
            predicate: self.predicate.clone(),
            decision,
        }
    }

    /// Whether the packet matches the rule's predicate.
    pub fn matches(&self, packet: &Packet) -> bool {
        self.predicate.matches(packet)
    }

    /// Whether the rule's predicate is simple (single interval per field).
    pub fn is_simple(&self) -> bool {
        self.predicate.is_simple()
    }

    /// Validates the rule against a schema.
    ///
    /// # Errors
    ///
    /// Propagates the predicate validation errors of [`Predicate::new`].
    pub fn validate(&self, schema: &Schema) -> Result<(), ModelError> {
        Predicate::new(schema, self.predicate.sets().to_vec()).map(|_| ())
    }

    /// Lowers a general rule into simple rules with the same decision whose
    /// union of predicates is exactly this rule's predicate.
    pub fn to_simple_rules(&self) -> Vec<Rule> {
        self.predicate
            .to_simple_predicates()
            .into_iter()
            .map(|p| Rule::new(p, self.decision))
            .collect()
    }

    /// Paper-style display: `predicate -> decision`, with field names taken
    /// from `schema` and unconstrained fields elided.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DisplayRule<'a> {
        DisplayRule { rule: self, schema }
    }
}

/// Helper returned by [`Rule::display`].
#[derive(Debug)]
pub struct DisplayRule<'a> {
    rule: &'a Rule,
    schema: &'a Schema,
}

impl std::fmt::Display for DisplayRule<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} -> {}",
            self.rule.predicate.display(self.schema),
            self.rule.decision
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FieldId, IntervalSet};

    #[test]
    fn catch_all_matches_anything() {
        let s = Schema::paper_example();
        let r = Rule::catch_all(&s, Decision::Accept);
        assert!(r.matches(&Packet::new(vec![1, 0, u64::from(u32::MAX), 65535, 1])));
        assert!(r.is_simple());
        assert!(r.validate(&s).is_ok());
    }

    #[test]
    fn with_decision_keeps_predicate() {
        let s = Schema::paper_example();
        let r = Rule::catch_all(&s, Decision::Accept);
        let d = r.with_decision(Decision::DiscardLog);
        assert_eq!(d.predicate(), r.predicate());
        assert_eq!(d.decision(), Decision::DiscardLog);
    }

    #[test]
    fn to_simple_rules_preserves_decision() {
        let s = Schema::paper_example();
        let pred = Predicate::any(&s)
            .with_field(
                FieldId(3),
                IntervalSet::from_intervals(vec![
                    crate::Interval::new(25, 25).unwrap(),
                    crate::Interval::new(80, 80).unwrap(),
                ]),
            )
            .unwrap();
        let r = Rule::new(pred, Decision::Discard);
        let simple = r.to_simple_rules();
        assert_eq!(simple.len(), 2);
        assert!(simple
            .iter()
            .all(|x| x.decision() == Decision::Discard && x.is_simple()));
    }

    #[test]
    fn display_format() {
        let s = Schema::paper_example();
        let r = Rule::catch_all(&s, Decision::Accept);
        assert_eq!(r.display(&s).to_string(), "* -> accept");
    }
}
