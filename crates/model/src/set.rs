use std::fmt;

use serde::{Deserialize, Serialize};

use crate::interval::SubtractResult;
use crate::Interval;

/// A (possibly empty) set of `u64` values stored as sorted, disjoint,
/// non-adjacent intervals.
///
/// `IntervalSet` is the label type of FDD edges (paper §2, property 3: each
/// edge carries a non-empty set of integers) and the per-field constraint of
/// general rule predicates. The internal representation is canonical — two
/// sets are equal as sets if and only if they compare equal with `==` — which
/// the whole FDD machinery relies on.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), fw_model::ModelError> {
/// use fw_model::{Interval, IntervalSet};
///
/// let a = IntervalSet::from_intervals(vec![Interval::new(0, 9)?, Interval::new(20, 29)?]);
/// let b = IntervalSet::from_interval(Interval::new(5, 24)?);
/// let both = a.intersect(&b);
/// assert_eq!(both.count(), 10); // 5..=9 and 20..=24
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IntervalSet {
    /// Sorted, pairwise disjoint and non-adjacent.
    runs: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> Self {
        IntervalSet { runs: Vec::new() }
    }

    /// The set containing exactly one interval.
    pub fn from_interval(iv: Interval) -> Self {
        IntervalSet { runs: vec![iv] }
    }

    /// The set containing exactly one value.
    pub fn from_value(v: u64) -> Self {
        Self::from_interval(Interval::point(v))
    }

    /// Builds a set from arbitrary (unsorted, possibly overlapping)
    /// intervals, normalising into canonical form.
    pub fn from_intervals<I>(intervals: I) -> Self
    where
        I: IntoIterator<Item = Interval>,
    {
        let mut runs: Vec<Interval> = intervals.into_iter().collect();
        runs.sort_unstable_by_key(|iv| (iv.lo(), iv.hi()));
        let mut out: Vec<Interval> = Vec::with_capacity(runs.len());
        for iv in runs {
            match out.last_mut() {
                Some(last) => match last.merge(iv) {
                    Some(m) => *last = m,
                    None => out.push(iv),
                },
                None => out.push(iv),
            }
        }
        IntervalSet { runs: out }
    }

    /// Whether the set contains no values.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of values in the set, as `u128` (the full 64-bit domain holds
    /// `2^64` values).
    pub fn count(&self) -> u128 {
        self.runs.iter().map(|iv| iv.count()).sum()
    }

    /// Number of maximal intervals in the canonical representation.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The intervals of the canonical representation, ascending.
    pub fn iter(&self) -> std::slice::Iter<'_, Interval> {
        self.runs.iter()
    }

    /// The intervals as a slice, ascending.
    pub fn as_slice(&self) -> &[Interval] {
        &self.runs
    }

    /// If the set is exactly one interval, returns it.
    pub fn as_single_interval(&self) -> Option<Interval> {
        match self.runs.as_slice() {
            [only] => Some(*only),
            _ => None,
        }
    }

    /// The smallest value in the set, if any.
    pub fn min_value(&self) -> Option<u64> {
        self.runs.first().map(|iv| iv.lo())
    }

    /// The largest value in the set, if any.
    pub fn max_value(&self) -> Option<u64> {
        self.runs.last().map(|iv| iv.hi())
    }

    /// Whether `v` is a member of the set.
    pub fn contains(&self, v: u64) -> bool {
        self.runs
            .binary_search_by(|iv| {
                if iv.hi() < v {
                    std::cmp::Ordering::Less
                } else if iv.lo() > v {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        IntervalSet::from_intervals(self.runs.iter().chain(other.runs.iter()).copied())
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (a, b) = (self.runs[i], other.runs[j]);
            if let Some(c) = a.intersect(b) {
                out.push(c);
            }
            if a.hi() <= b.hi() {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { runs: out }
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let mut j = 0;
        for &a in &self.runs {
            let mut pending = a;
            let mut exhausted = false;
            // Skip other-runs entirely below `pending`.
            while j < other.runs.len() && other.runs[j].hi() < pending.lo() {
                j += 1;
            }
            let mut k = j;
            while k < other.runs.len() && other.runs[k].lo() <= pending.hi() {
                match pending.subtract(other.runs[k]) {
                    SubtractResult::Empty => {
                        exhausted = true;
                        break;
                    }
                    SubtractResult::One(rest) => {
                        if rest.hi() < other.runs[k].lo() {
                            // Residue lies entirely left of the cut: done.
                            pending = rest;
                            exhausted = true;
                            out.push(pending);
                            break;
                        }
                        pending = rest;
                    }
                    SubtractResult::Two(left, right) => {
                        out.push(left);
                        pending = right;
                    }
                }
                k += 1;
            }
            if !exhausted {
                out.push(pending);
            }
        }
        IntervalSet { runs: out }
    }

    /// Complement within `domain`: `domain \ self`.
    pub fn complement(&self, domain: Interval) -> IntervalSet {
        IntervalSet::from_interval(domain).subtract(self)
    }

    /// Whether every member of `self` is a member of `other`.
    pub fn is_subset_of(&self, other: &IntervalSet) -> bool {
        let mut j = 0;
        for &a in &self.runs {
            while j < other.runs.len() && other.runs[j].hi() < a.lo() {
                j += 1;
            }
            match other.runs.get(j) {
                Some(b) if b.contains_interval(a) => {}
                _ => return false,
            }
        }
        true
    }

    /// Whether the two sets share at least one value.
    pub fn intersects(&self, other: &IntervalSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (a, b) = (self.runs[i], other.runs[j]);
            if a.overlaps(b) {
                return true;
            }
            if a.hi() < b.hi() {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Whether the set equals the whole `domain`.
    pub fn covers(&self, domain: Interval) -> bool {
        matches!(self.runs.as_slice(), [only] if *only == domain)
    }

    /// An arbitrary representative value from the set, if non-empty.
    ///
    /// Used by testing oracles that need one witness packet per region.
    pub fn any_value(&self) -> Option<u64> {
        self.min_value()
    }
}

impl From<Interval> for IntervalSet {
    fn from(iv: Interval) -> Self {
        IntervalSet::from_interval(iv)
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        IntervalSet::from_intervals(iter)
    }
}

impl Extend<Interval> for IntervalSet {
    fn extend<I: IntoIterator<Item = Interval>>(&mut self, iter: I) {
        *self = IntervalSet::from_intervals(self.runs.iter().copied().chain(iter));
    }
}

impl<'a> IntoIterator for &'a IntervalSet {
    type Item = &'a Interval;
    type IntoIter = std::slice::Iter<'a, Interval>;

    fn into_iter(self) -> Self::IntoIter {
        self.runs.iter()
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.runs.is_empty() {
            return write!(f, "∅");
        }
        for (i, iv) in self.runs.iter().enumerate() {
            if i > 0 {
                write!(f, "|")?;
            }
            write!(f, "{iv}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    fn set(pairs: &[(u64, u64)]) -> IntervalSet {
        IntervalSet::from_intervals(pairs.iter().map(|&(l, h)| iv(l, h)))
    }

    #[test]
    fn normalisation_merges_overlap_and_adjacency() {
        let s = set(&[(5, 9), (0, 4), (11, 20), (15, 30)]);
        assert_eq!(s.as_slice(), &[iv(0, 9), iv(11, 30)]);
    }

    #[test]
    fn contains_uses_binary_search_correctly() {
        let s = set(&[(0, 4), (10, 14), (20, 24)]);
        for v in [0, 4, 10, 14, 20, 24] {
            assert!(s.contains(v), "{v} should be in {s}");
        }
        for v in [5, 9, 15, 19, 25, u64::MAX] {
            assert!(!s.contains(v), "{v} should not be in {s}");
        }
    }

    #[test]
    fn union_intersect_subtract_agree_on_members() {
        let a = set(&[(0, 9), (20, 29)]);
        let b = set(&[(5, 24)]);
        let u = a.union(&b);
        let i = a.intersect(&b);
        let d = a.subtract(&b);
        for v in 0..40 {
            assert_eq!(
                u.contains(v),
                a.contains(v) || b.contains(v),
                "union at {v}"
            );
            assert_eq!(
                i.contains(v),
                a.contains(v) && b.contains(v),
                "intersect at {v}"
            );
            assert_eq!(
                d.contains(v),
                a.contains(v) && !b.contains(v),
                "subtract at {v}"
            );
        }
    }

    #[test]
    fn subtract_multiple_cuts_from_one_run() {
        let a = set(&[(0, 100)]);
        let b = set(&[(10, 19), (30, 39), (90, 200)]);
        assert_eq!(
            a.subtract(&b).as_slice(),
            &[iv(0, 9), iv(20, 29), iv(40, 89)]
        );
    }

    #[test]
    fn subtract_cut_spanning_runs() {
        let a = set(&[(0, 9), (20, 29), (40, 49)]);
        let b = set(&[(5, 44)]);
        assert_eq!(a.subtract(&b).as_slice(), &[iv(0, 4), iv(45, 49)]);
    }

    #[test]
    fn complement_round_trip() {
        let dom = iv(0, 255);
        let s = set(&[(0, 10), (200, 255)]);
        let c = s.complement(dom);
        assert_eq!(c.as_slice(), &[iv(11, 199)]);
        assert_eq!(c.complement(dom), s);
        assert_eq!(s.union(&c).as_slice(), &[dom]);
        assert!(s.intersect(&c).is_empty());
    }

    #[test]
    fn subset_relation() {
        let a = set(&[(2, 4), (8, 9)]);
        let b = set(&[(0, 5), (7, 10)]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(IntervalSet::empty().is_subset_of(&a));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    fn intersects_fast_path() {
        let a = set(&[(0, 4), (10, 14)]);
        let b = set(&[(5, 9)]);
        assert!(!a.intersects(&b));
        assert!(a.intersects(&set(&[(14, 20)])));
    }

    #[test]
    fn covers_full_domain() {
        let dom = iv(0, 65535);
        assert!(IntervalSet::from_interval(dom).covers(dom));
        assert!(!set(&[(0, 65534)]).covers(dom));
        assert!(!set(&[(0, 10), (12, 65535)]).covers(dom));
    }

    #[test]
    fn count_sums_runs() {
        assert_eq!(set(&[(0, 9), (20, 24)]).count(), 15);
        assert_eq!(IntervalSet::empty().count(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(IntervalSet::empty().to_string(), "∅");
        assert_eq!(set(&[(1, 1), (3, 5)]).to_string(), "1|3-5");
    }

    #[test]
    fn collect_from_iterator() {
        let s: IntervalSet = [iv(3, 5), iv(0, 2)].into_iter().collect();
        assert_eq!(s.as_slice(), &[iv(0, 5)]);
    }

    #[test]
    fn extend_renormalises() {
        let mut s = set(&[(0, 4)]);
        s.extend([iv(5, 9)]);
        assert_eq!(s.as_slice(), &[iv(0, 9)]);
    }

    #[test]
    fn full_domain_subtract_handles_extremes() {
        let dom = iv(0, u64::MAX);
        let s = IntervalSet::from_interval(dom);
        let cut = set(&[(0, 0), (u64::MAX, u64::MAX)]);
        let r = s.subtract(&cut);
        assert_eq!(r.as_slice(), &[iv(1, u64::MAX - 1)]);
    }
}
