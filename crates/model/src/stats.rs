//! Structural statistics of a policy — the quantities Gupta-style rule
//! surveys report and the synthetic generator is calibrated against.

use serde::{Deserialize, Serialize};

use crate::{Decision, FieldId, Firewall};

/// Structural statistics of one firewall policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FirewallStats {
    /// Total rules.
    pub rules: usize,
    /// Per field (schema order): how many rules constrain it to less than
    /// its full domain.
    pub constrained_per_field: Vec<usize>,
    /// Rules per decision, in [`Decision::ALL`] order.
    pub decisions: [usize; 4],
    /// Rules whose predicate is simple (one interval per field).
    pub simple_rules: usize,
    /// Distinct non-full value sets per field — the "pool size" real
    /// policies keep small.
    pub distinct_sets_per_field: Vec<usize>,
}

impl FirewallStats {
    /// Fraction of rules constraining field `id`.
    pub fn constrained_fraction(&self, id: FieldId) -> f64 {
        if self.rules == 0 {
            0.0
        } else {
            self.constrained_per_field[id.index()] as f64 / self.rules as f64
        }
    }

    /// Fraction of rules whose packets pass (accept or accept-log).
    pub fn permit_fraction(&self) -> f64 {
        if self.rules == 0 {
            0.0
        } else {
            (self.decisions[0] + self.decisions[2]) as f64 / self.rules as f64
        }
    }
}

impl Firewall {
    /// Computes [`FirewallStats`] for this policy.
    ///
    /// # Example
    ///
    /// ```
    /// use fw_model::paper;
    ///
    /// let stats = paper::team_b().stats();
    /// assert_eq!(stats.rules, 4);
    /// assert!(stats.permit_fraction() > 0.0);
    /// ```
    pub fn stats(&self) -> FirewallStats {
        let schema = self.schema();
        let d = schema.len();
        let mut constrained = vec![0usize; d];
        let mut distinct: Vec<std::collections::HashSet<&crate::IntervalSet>> =
            vec![std::collections::HashSet::new(); d];
        let mut decisions = [0usize; 4];
        let mut simple = 0usize;
        for rule in self.rules() {
            if rule.is_simple() {
                simple += 1;
            }
            let di = Decision::ALL
                .iter()
                .position(|&x| x == rule.decision())
                .expect("ALL is exhaustive");
            decisions[di] += 1;
            for (id, field) in schema.iter() {
                let set = rule.predicate().set(id);
                if !set.covers(field.domain()) {
                    constrained[id.index()] += 1;
                    distinct[id.index()].insert(set);
                }
            }
        }
        FirewallStats {
            rules: self.len(),
            constrained_per_field: constrained,
            decisions,
            simple_rules: simple,
            distinct_sets_per_field: distinct.into_iter().map(|s| s.len()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn paper_example_stats() {
        let s = paper::team_a().stats();
        assert_eq!(s.rules, 3);
        // iface constrained by rules 1 and 2 only.
        assert_eq!(s.constrained_per_field[0], 2);
        // src constrained by rule 2 only.
        assert_eq!(s.constrained_per_field[1], 1);
        assert_eq!(s.decisions, [2, 1, 0, 0]); // 2 accepts, 1 discard
        assert_eq!(s.simple_rules, 3);
        assert!((s.permit_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_sets_track_pools() {
        let s = paper::team_b().stats();
        // Both dst-constraining rules use the same mail-server set.
        assert_eq!(s.distinct_sets_per_field[2], 1);
        assert!(s.constrained_per_field[2] >= 2);
    }

    #[test]
    fn constrained_fraction_bounds() {
        let s = paper::team_b().stats();
        for i in 0..5 {
            let f = s.constrained_fraction(FieldId(i));
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
