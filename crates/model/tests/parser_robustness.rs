//! Robustness properties of the rule-DSL parser: it must never panic on
//! arbitrary input, and parse/print must be mutually inverse on valid
//! policies — including over permuted schemas.

use fw_model::{FieldPermutation, Firewall, Packet, Schema};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "\\PC{0,120}") {
        // Any outcome is fine; panicking is not.
        let _ = Firewall::parse(Schema::tcp_ip(), &text);
        let _ = Firewall::parse(Schema::paper_example(), &text);
    }

    #[test]
    fn parser_never_panics_on_rule_shaped_text(
        field in "(src|dst|sport|dport|proto|iface|nosuch)",
        value in "[0-9./*|-]{0,20}",
        decision in "(accept|discard|drop|reject|)",
    ) {
        let line = format!("{field}={value} -> {decision}");
        let _ = Firewall::parse(Schema::tcp_ip(), &line);
    }
}

#[test]
fn print_parse_round_trip_under_permutation() {
    use fw_model::paper;
    let fw = paper::team_b();
    for perm in [
        FieldPermutation::identity(5),
        FieldPermutation::reversed(5),
        FieldPermutation::new(vec![2, 0, 4, 1, 3]).unwrap(),
    ] {
        let permuted = fw.permute_fields(&perm).unwrap();
        let text = permuted.to_dsl();
        let again = Firewall::parse(permuted.schema().clone(), &text).unwrap();
        assert_eq!(permuted, again, "round trip failed for {perm:?}");
        // Semantics under the permutation: decisions agree through the
        // packet mapping.
        for p in fw.witnesses() {
            let q = perm.apply_packet(&p).unwrap();
            assert_eq!(fw.decision_for(&p), permuted.decision_for(&q));
        }
    }
}

#[test]
fn permutation_distributes_over_witnesses() {
    use fw_model::paper;
    let fw = paper::team_b();
    let perm = FieldPermutation::new(vec![4, 0, 3, 1, 2]).unwrap();
    let permuted = fw.permute_fields(&perm).unwrap();
    for p in fw.witnesses() {
        let q = perm.apply_packet(&p).unwrap();
        assert_eq!(fw.decision_for(&p), permuted.decision_for(&q));
    }
    // And the inverse permutation undoes the firewall transform.
    let back = permuted.permute_fields(&perm.inverse()).unwrap();
    assert_eq!(back, fw);
}

#[test]
fn permuted_packets_keep_values() {
    let perm = FieldPermutation::reversed(3);
    let p = Packet::new(vec![7, 8, 9]);
    let q = perm.apply_packet(&p).unwrap();
    assert_eq!(q.values(), &[9, 8, 7]);
}
