//! Property-based tests for the fw-model foundations.
//!
//! The interval-set algebra underlies every FDD operation, so it is verified
//! here against a naive membership oracle over small domains; prefix
//! conversion is checked for exact coverage, minimality-bound and round
//! trips; the DSL printer/parser pair is checked as an inverse pair.

use fw_model::prefix::{interval_to_prefixes, set_to_prefixes};
use fw_model::{
    Decision, FieldDef, FieldId, Firewall, Interval, IntervalSet, Packet, Predicate, Rule, Schema,
};
use proptest::prelude::*;

const DOM: u64 = 63; // small domain so oracles can enumerate

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0..=DOM, 0..=DOM).prop_map(|(a, b)| Interval::new(a.min(b), a.max(b)).unwrap())
}

fn arb_set() -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec(arb_interval(), 0..6).prop_map(IntervalSet::from_intervals)
}

fn members(s: &IntervalSet) -> Vec<bool> {
    (0..=DOM).map(|v| s.contains(v)).collect()
}

proptest! {
    #[test]
    fn normalisation_is_canonical(ivs in prop::collection::vec(arb_interval(), 0..6)) {
        let s = IntervalSet::from_intervals(ivs.clone());
        // Same members as the raw union.
        for v in 0..=DOM {
            let naive = ivs.iter().any(|iv| iv.contains(v));
            prop_assert_eq!(s.contains(v), naive);
        }
        // Runs are sorted, disjoint, non-adjacent.
        let runs = s.as_slice();
        for w in runs.windows(2) {
            prop_assert!(w[0].hi() + 1 < w[1].lo(), "runs {} and {} not normalised", w[0], w[1]);
        }
        // Re-normalising is a fixpoint.
        prop_assert_eq!(&IntervalSet::from_intervals(runs.iter().copied()), &s);
    }

    #[test]
    fn set_algebra_matches_oracle(a in arb_set(), b in arb_set()) {
        let (ma, mb) = (members(&a), members(&b));
        let union = a.union(&b);
        let inter = a.intersect(&b);
        let diff = a.subtract(&b);
        for v in 0..=DOM as usize {
            prop_assert_eq!(union.contains(v as u64), ma[v] || mb[v], "union at {}", v);
            prop_assert_eq!(inter.contains(v as u64), ma[v] && mb[v], "intersect at {}", v);
            prop_assert_eq!(diff.contains(v as u64), ma[v] && !mb[v], "subtract at {}", v);
        }
        // Count agrees with membership.
        prop_assert_eq!(union.count(), members(&union).iter().filter(|&&x| x).count() as u128);
    }

    #[test]
    fn complement_laws(a in arb_set()) {
        let dom = Interval::new(0, DOM).unwrap();
        let c = a.complement(dom);
        prop_assert!(a.intersect(&c).is_empty());
        prop_assert!(a.union(&c).covers(dom));
        prop_assert_eq!(&c.complement(dom), &a);
    }

    #[test]
    fn subset_iff_subtract_empty(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.is_subset_of(&b), a.subtract(&b).is_empty());
        prop_assert_eq!(a.intersects(&b), !a.intersect(&b).is_empty());
    }

    #[test]
    fn prefix_cover_is_exact_and_bounded(iv in arb_interval()) {
        // DOM = 63 => 6-bit field.
        let ps = interval_to_prefixes(iv, 6).unwrap();
        for v in 0..=DOM {
            prop_assert_eq!(ps.iter().any(|p| p.contains(v)), iv.contains(v), "at {}", v);
        }
        // Paper §7.1: at most 2w - 2 prefixes for w >= 2.
        prop_assert!(ps.len() <= 10, "got {} prefixes for {}", ps.len(), iv);
        // Prefixes are disjoint and ascending.
        for w in ps.windows(2) {
            prop_assert!(w[0].interval().hi() < w[1].interval().lo());
        }
    }

    #[test]
    fn set_prefix_cover_is_exact(s in arb_set()) {
        let ps = set_to_prefixes(&s, 6).unwrap();
        for v in 0..=DOM {
            prop_assert_eq!(ps.iter().any(|p| p.contains(v)), s.contains(v), "at {}", v);
        }
    }

    #[test]
    fn wide_prefix_cover_round_trips(lo in any::<u32>(), hi in any::<u32>()) {
        let (lo, hi) = (u64::from(lo.min(hi)), u64::from(lo.max(hi)));
        let iv = Interval::new(lo, hi).unwrap();
        let ps = interval_to_prefixes(iv, 32).unwrap();
        prop_assert!(ps.len() <= 62); // 2*32 - 2
        // The prefix intervals tile [lo, hi] exactly.
        let mut expect = lo;
        for p in &ps {
            prop_assert_eq!(p.interval().lo(), expect);
            expect = p.interval().hi().wrapping_add(1);
        }
        prop_assert_eq!(expect.wrapping_sub(1), hi);
    }
}

fn arb_schema_packet_rules() -> impl Strategy<Value = (Schema, Vec<Rule>)> {
    // Three small fields keep the space enumerable while exercising arity.
    let schema = Schema::new(vec![
        FieldDef::new("a", 3).unwrap(),
        FieldDef::new("b", 4).unwrap(),
        FieldDef::new("c", 2).unwrap(),
    ])
    .unwrap();
    let schema2 = schema.clone();
    let arb_field_set = |bits: u32| {
        let max = (1u64 << bits) - 1;
        prop::collection::vec((0..=max, 0..=max), 1..3).prop_map(move |pairs| {
            IntervalSet::from_intervals(
                pairs
                    .into_iter()
                    .map(|(x, y)| Interval::new(x.min(y), x.max(y)).unwrap()),
            )
        })
    };
    let rule = (
        arb_field_set(3),
        arb_field_set(4),
        arb_field_set(2),
        0..4usize,
    )
        .prop_map(move |(a, b, c, d)| {
            Rule::new(
                Predicate::new(&schema2, vec![a, b, c]).unwrap(),
                Decision::ALL[d],
            )
        });
    prop::collection::vec(rule, 1..8).prop_map(move |mut rules| {
        rules.push(Rule::catch_all(&schema, Decision::Accept));
        (schema.clone(), rules)
    })
}

proptest! {
    #[test]
    fn dsl_round_trip_preserves_semantics((schema, rules) in arb_schema_packet_rules()) {
        let fw = Firewall::new(schema.clone(), rules).unwrap();
        let text = fw.to_dsl();
        let again = Firewall::parse(schema.clone(), &text).unwrap();
        // Same decision for every packet in the (small) space.
        for a in 0..8u64 {
            for b in 0..16u64 {
                for c in 0..4u64 {
                    let p = Packet::new(vec![a, b, c]);
                    prop_assert_eq!(fw.decision_for(&p), again.decision_for(&p), "at {}", p);
                }
            }
        }
    }

    #[test]
    fn simple_rule_lowering_preserves_semantics((schema, rules) in arb_schema_packet_rules()) {
        let fw = Firewall::new(schema, rules).unwrap();
        let simple = fw.to_simple_rules();
        prop_assert!(simple.is_simple());
        for a in 0..8u64 {
            for b in 0..16u64 {
                for c in 0..4u64 {
                    let p = Packet::new(vec![a, b, c]);
                    prop_assert_eq!(fw.decision_for(&p), simple.decision_for(&p), "at {}", p);
                }
            }
        }
    }

    #[test]
    fn first_match_is_first((schema, rules) in arb_schema_packet_rules()) {
        let fw = Firewall::new(schema, rules).unwrap();
        for p in fw.witnesses() {
            let idx = fw.first_match(&p).expect("witness matches its own rule");
            for earlier in 0..idx {
                prop_assert!(!fw.rules()[earlier].matches(&p));
            }
            prop_assert!(fw.rules()[idx].matches(&p));
            prop_assert_eq!(fw.decision_for(&p), Some(fw.rules()[idx].decision()));
        }
    }
}

#[test]
fn packet_field_access_consistency() {
    let p = Packet::new(vec![9, 8, 7]);
    assert_eq!(p.values(), &[9, 8, 7]);
    assert_eq!(p.get(FieldId(0)), Some(9));
}
