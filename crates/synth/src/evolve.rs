//! Longitudinal policy evolution: simulate months of administration.
//!
//! The paper motivates change-impact analysis with how policies actually
//! change: new threats get blocked at the top, new services get opened,
//! stale rules get deleted, and "cleanups" reorder rules (§1.3, §8.1).
//! [`evolve`] replays such a history as a sequence of concrete
//! [`fw_core::Edit`]s, yielding every intermediate version — the workload
//! for longitudinal change-impact studies and for testing tools against
//! realistic drift.

use fw_core::Edit;
use fw_model::{Decision, FieldId, Firewall, IntervalSet, Predicate, Rule};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Relative frequency of each administrative action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvolutionProfile {
    /// Block a new threat: insert a discard rule at the top (§8.1's
    /// dominant error source when done carelessly).
    pub w_block_threat: u32,
    /// Open a new service: insert an accept rule above the default.
    pub w_open_service: u32,
    /// Delete a random non-default rule ("cleanup").
    pub w_delete: u32,
    /// Swap two adjacent rules ("reordering cleanup").
    pub w_swap: u32,
    /// Replace a rule's decision (tighten or loosen).
    pub w_flip_decision: u32,
}

impl Default for EvolutionProfile {
    fn default() -> Self {
        EvolutionProfile {
            w_block_threat: 4,
            w_open_service: 3,
            w_delete: 1,
            w_swap: 1,
            w_flip_decision: 1,
        }
    }
}

/// One step of an evolution: the edit applied and the policy after it.
#[derive(Debug, Clone)]
pub struct EvolutionStep {
    /// The edit applied at this step.
    pub edit: Edit,
    /// The policy after the edit.
    pub after: Firewall,
}

/// Replays `steps` random administrative actions on `initial`,
/// deterministically per seed, returning every intermediate version.
///
/// Every produced policy stays comprehensive (the trailing catch-all is
/// never deleted or displaced below insertion points).
pub fn evolve(
    initial: &Firewall,
    steps: usize,
    profile: &EvolutionProfile,
    seed: u64,
) -> Vec<EvolutionStep> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = initial.clone();
    let mut out = Vec::with_capacity(steps);
    let weights = [
        profile.w_block_threat,
        profile.w_open_service,
        profile.w_delete,
        profile.w_swap,
        profile.w_flip_decision,
    ];
    let total: u32 = weights.iter().sum();
    assert!(
        total > 0,
        "evolution profile must enable at least one action"
    );
    for _ in 0..steps {
        let mut roll = rng.random_range(0..total);
        let mut action = 0usize;
        for (i, &w) in weights.iter().enumerate() {
            if roll < w {
                action = i;
                break;
            }
            roll -= w;
        }
        let edit = match action {
            0 => Edit::Insert {
                index: 0,
                rule: random_rule(&current, &mut rng, false),
            },
            1 => {
                // Above the default (last) rule.
                let index = current.len().saturating_sub(1);
                Edit::Insert {
                    index,
                    rule: random_rule(&current, &mut rng, true),
                }
            }
            2 if current.len() > 1 => Edit::Remove {
                index: rng.random_range(0..current.len() - 1),
            },
            3 if current.len() > 2 => {
                let first = rng.random_range(0..current.len() - 2);
                Edit::Swap {
                    first,
                    second: first + 1,
                }
            }
            4 if current.len() > 1 => {
                let index = rng.random_range(0..current.len() - 1);
                let rule = current.rules()[index].clone();
                let flipped = rule.with_decision(rule.decision().inverted());
                Edit::Replace {
                    index,
                    rule: flipped,
                }
            }
            // Degenerate policies fall back to a threat block.
            _ => Edit::Insert {
                index: 0,
                rule: random_rule(&current, &mut rng, false),
            },
        };
        current = edit.apply(&current).expect("evolution edits are in range");
        out.push(EvolutionStep {
            edit,
            after: current.clone(),
        });
    }
    out
}

/// A plausible rule against the policy's schema: a /16 or /24 source or
/// destination with one port and protocol.
fn random_rule(fw: &Firewall, rng: &mut StdRng, accept: bool) -> Rule {
    let schema = fw.schema();
    let mut pred = Predicate::any(schema);
    // Pick an IP-ish (32-bit) field and a port-ish (16-bit) field if present.
    let ip_fields: Vec<FieldId> = schema
        .iter()
        .filter(|(_, f)| f.bits() == 32)
        .map(|(id, _)| id)
        .collect();
    let port_fields: Vec<FieldId> = schema
        .iter()
        .filter(|(_, f)| f.bits() == 16)
        .map(|(id, _)| id)
        .collect();
    if let Some(&id) = ip_fields.as_slice().choose(rng) {
        let plen = *[16u32, 24, 24].choose(rng).expect("static choices");
        let base: u64 = rng.random_range(0..=u64::from(u32::MAX));
        let p = fw_model::Prefix::new(base, plen, 32).expect("static widths");
        pred = pred
            .with_field(id, IntervalSet::from_interval(p.interval()))
            .expect("prefix intervals are valid");
    }
    if let Some(&id) = port_fields.as_slice().choose(rng) {
        let port = *[22u64, 25, 53, 80, 443, 3389, 5554, 8080]
            .choose(rng)
            .expect("static");
        pred = pred
            .with_field(id, IntervalSet::from_value(port))
            .expect("port values are valid");
    }
    let decision = if accept {
        Decision::Accept
    } else {
        Decision::DiscardLog
    };
    Rule::new(pred, decision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Synthesizer;

    #[test]
    fn evolution_is_deterministic_and_comprehensive() {
        let base = Synthesizer::new(1).firewall(20);
        let a = evolve(&base, 15, &EvolutionProfile::default(), 9);
        let b = evolve(&base, 15, &EvolutionProfile::default(), 9);
        assert_eq!(a.len(), 15);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.after, y.after);
        }
        for step in &a {
            assert!(
                step.after.is_comprehensive_syntactically(),
                "lost the catch-all"
            );
        }
    }

    #[test]
    fn every_step_has_computable_impact() {
        let base = Synthesizer::new(2).firewall(15);
        let history = evolve(&base, 10, &EvolutionProfile::default(), 5);
        let mut prev = base;
        for step in history {
            let impact = fw_core::ChangeImpact::between(&prev, &step.after).unwrap();
            // The impact is well-defined; some edits are no-ops, some not.
            let _ = impact.affected_packets();
            prev = step.after;
        }
    }

    #[test]
    fn block_heavy_profile_grows_the_policy() {
        let base = Synthesizer::new(3).firewall(10);
        let profile = EvolutionProfile {
            w_block_threat: 1,
            w_open_service: 0,
            w_delete: 0,
            w_swap: 0,
            w_flip_decision: 0,
        };
        let history = evolve(&base, 8, &profile, 1);
        assert_eq!(history.last().unwrap().after.len(), 18);
        // All inserts at the top.
        for step in &history {
            assert!(matches!(step.edit, Edit::Insert { index: 0, .. }));
        }
    }

    #[test]
    #[should_panic(expected = "at least one action")]
    fn empty_profile_panics() {
        let base = Synthesizer::new(4).firewall(5);
        let profile = EvolutionProfile {
            w_block_threat: 0,
            w_open_service: 0,
            w_delete: 0,
            w_swap: 0,
            w_flip_decision: 0,
        };
        let _ = evolve(&base, 1, &profile, 0);
    }
}
