//! Synthetic firewall generation "based on the characteristics of real-life
//! firewalls" (paper §8.2.2, citing Gupta's measurements \[13]).
//!
//! Real policies are highly structured: rules draw their IP blocks from a
//! small pool of site prefixes, their ports from a handful of well-known
//! services and ranges, and most of them end in a catch-all. The generator
//! reproduces that structure — a seeded pool of prefixes and port classes
//! per policy — which both matches reality and keeps FDD sizes in the
//! regime the paper measures (two independently generated 3,000-rule
//! policies compare in seconds).

use fw_model::{
    Decision, FieldId, Firewall, Interval, IntervalSet, Predicate, Prefix, Rule, Schema,
};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Tunable profile for the synthetic generator.
///
/// The defaults follow the rule-statistics summary the paper relies on:
/// ~10 % of rules constrain the source port, most constrain the protocol,
/// destination IPs are more specific than sources, and decisions skew
/// toward `discard` for specific rules with an accepting catch-all.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthProfile {
    /// Number of distinct IP prefixes in the policy's address pool.
    pub prefix_pool: usize,
    /// Number of distinct port specifications in the pool.
    pub port_pool: usize,
    /// Probability that a rule constrains the source address.
    pub p_src: f64,
    /// Probability that a rule constrains the destination address.
    pub p_dst: f64,
    /// Probability that a rule constrains the source port.
    pub p_sport: f64,
    /// Probability that a rule constrains the destination port.
    pub p_dport: f64,
    /// Probability that a rule constrains the protocol.
    pub p_proto: f64,
    /// Probability that a non-catch-all rule discards.
    pub p_discard: f64,
    /// Probability that a discarding rule also logs.
    pub p_log: f64,
}

impl Default for SynthProfile {
    fn default() -> Self {
        SynthProfile {
            prefix_pool: 24,
            port_pool: 16,
            p_src: 0.55,
            p_dst: 0.75,
            p_sport: 0.10,
            p_dport: 0.70,
            p_proto: 0.85,
            p_discard: 0.55,
            p_log: 0.15,
        }
    }
}

/// Deterministic synthetic-firewall generator over [`Schema::tcp_ip`].
///
/// # Example
///
/// ```
/// use fw_synth::Synthesizer;
///
/// let fw = Synthesizer::new(42).firewall(100);
/// assert_eq!(fw.len(), 100);
/// assert!(fw.is_comprehensive_syntactically());
/// // Same seed, same policy:
/// assert_eq!(fw, Synthesizer::new(42).firewall(100));
/// ```
#[derive(Debug)]
pub struct Synthesizer {
    rng: StdRng,
    profile: SynthProfile,
    schema: Schema,
}

impl Synthesizer {
    /// Creates a generator with the default profile and the given seed.
    pub fn new(seed: u64) -> Synthesizer {
        Synthesizer::with_profile(seed, SynthProfile::default())
    }

    /// Creates a generator with a custom profile.
    pub fn with_profile(seed: u64, profile: SynthProfile) -> Synthesizer {
        Synthesizer {
            rng: StdRng::seed_from_u64(seed),
            profile,
            schema: Schema::tcp_ip(),
        }
    }

    /// The schema generated policies use.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Generates a comprehensive policy with exactly `n` rules (`n ≥ 1`);
    /// the last rule is a catch-all.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn firewall(&mut self, n: usize) -> Firewall {
        assert!(n >= 1, "a firewall needs at least one rule");
        let prefixes = self.prefix_pool();
        let ports = self.port_pool();
        let mut rules = Vec::with_capacity(n);
        for _ in 0..n - 1 {
            rules.push(self.rule(&prefixes, &ports));
        }
        let default_decision = if self.rng.random_bool(0.7) {
            Decision::Accept
        } else {
            Decision::Discard
        };
        rules.push(Rule::catch_all(&self.schema, default_decision));
        Firewall::new(self.schema.clone(), rules).expect("generated rules are valid")
    }

    /// The policy's address pool: site-local prefixes of realistic lengths
    /// (an /8 or /16 "campus", /24 subnets, /32 hosts).
    fn prefix_pool(&mut self) -> Vec<IntervalSet> {
        let mut out = Vec::with_capacity(self.profile.prefix_pool);
        for _ in 0..self.profile.prefix_pool {
            let plen = *[8u32, 16, 16, 24, 24, 24, 32, 32]
                .choose(&mut self.rng)
                .expect("static choices");
            let base: u64 = self.rng.random_range(0..=u64::from(u32::MAX));
            let p = Prefix::new(base, plen, 32).expect("static widths are valid");
            out.push(IntervalSet::from_interval(p.interval()));
        }
        out
    }

    /// The policy's port pool: well-known services, ephemeral ranges, and
    /// occasional small custom ranges.
    fn port_pool(&mut self) -> Vec<IntervalSet> {
        const WELL_KNOWN: [u64; 12] = [22, 23, 25, 53, 80, 110, 135, 139, 143, 443, 445, 3389];
        let mut out = Vec::with_capacity(self.profile.port_pool);
        for _ in 0..self.profile.port_pool {
            let roll: f64 = self.rng.random();
            let set = if roll < 0.6 {
                IntervalSet::from_value(*WELL_KNOWN.choose(&mut self.rng).expect("static choices"))
            } else if roll < 0.8 {
                IntervalSet::from_interval(Interval::new(1024, 65535).expect("static bounds"))
            } else {
                let lo = self.rng.random_range(0..=65000u64);
                let hi = (lo + self.rng.random_range(1..=512u64)).min(65535);
                IntervalSet::from_interval(Interval::new(lo, hi).expect("lo <= hi"))
            };
            out.push(set);
        }
        out
    }

    fn rule(&mut self, prefixes: &[IntervalSet], ports: &[IntervalSet]) -> Rule {
        // Real rules constrain something; an unconstrained rule would be an
        // accidental mid-policy catch-all shadowing everything below it.
        loop {
            let r = self.try_rule(prefixes, ports);
            if !r.predicate().is_any(&self.schema) {
                return r;
            }
        }
    }

    fn try_rule(&mut self, prefixes: &[IntervalSet], ports: &[IntervalSet]) -> Rule {
        let mut pred = Predicate::any(&self.schema);
        let p = self.profile.clone();
        if self.rng.random_bool(p.p_src) {
            let set = prefixes
                .choose(&mut self.rng)
                .expect("non-empty pool")
                .clone();
            pred = pred
                .with_field(FieldId(0), set)
                .expect("pool sets are valid");
        }
        if self.rng.random_bool(p.p_dst) {
            let set = prefixes
                .choose(&mut self.rng)
                .expect("non-empty pool")
                .clone();
            pred = pred
                .with_field(FieldId(1), set)
                .expect("pool sets are valid");
        }
        if self.rng.random_bool(p.p_sport) {
            let set = ports.choose(&mut self.rng).expect("non-empty pool").clone();
            pred = pred
                .with_field(FieldId(2), set)
                .expect("pool sets are valid");
        }
        if self.rng.random_bool(p.p_dport) {
            let set = ports.choose(&mut self.rng).expect("non-empty pool").clone();
            pred = pred
                .with_field(FieldId(3), set)
                .expect("pool sets are valid");
        }
        if self.rng.random_bool(p.p_proto) {
            let proto = *[1u64, 6, 6, 6, 17, 17]
                .choose(&mut self.rng)
                .expect("static choices");
            pred = pred
                .with_field(FieldId(4), IntervalSet::from_value(proto))
                .expect("pool sets are valid");
        }
        let decision = if self.rng.random_bool(p.p_discard) {
            if self.rng.random_bool(p.p_log) {
                Decision::DiscardLog
            } else {
                Decision::Discard
            }
        } else if self.rng.random_bool(p.p_log / 2.0) {
            Decision::AcceptLog
        } else {
            Decision::Accept
        };
        Rule::new(pred, decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Synthesizer::new(7).firewall(50);
        let b = Synthesizer::new(7).firewall(50);
        let c = Synthesizer::new(8).firewall(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_firewalls_are_valid_and_comprehensive() {
        for seed in 0..5 {
            let fw = Synthesizer::new(seed).firewall(80);
            assert_eq!(fw.len(), 80);
            assert!(fw.is_comprehensive_syntactically());
            // And convertible to a valid FDD (full §3 pipeline works).
            let fdd = fw_core::Fdd::from_firewall(&fw).unwrap();
            fdd.validate().unwrap();
        }
    }

    #[test]
    fn rules_use_realistic_pools() {
        let fw = Synthesizer::new(3).firewall(200);
        // Distinct destination-address sets stay bounded by the pool size
        // (plus the full domain).
        let distinct: std::collections::HashSet<_> = fw
            .rules()
            .iter()
            .map(|r| format!("{}", r.predicate().set(FieldId(1))))
            .collect();
        assert!(
            distinct.len() <= 26,
            "destination pool leaked: {}",
            distinct.len()
        );
    }

    #[test]
    fn single_rule_firewall_is_catch_all() {
        let fw = Synthesizer::new(1).firewall(1);
        assert_eq!(fw.len(), 1);
        assert!(fw.rules()[0].predicate().is_any(fw.schema()));
    }

    #[test]
    fn decisions_are_mixed() {
        let fw = Synthesizer::new(11).firewall(300);
        let accepts = fw.rules().iter().filter(|r| r.decision().permits()).count();
        let discards = fw.len() - accepts;
        assert!(accepts > 30, "too few accepts: {accepts}");
        assert!(discards > 30, "too few discards: {discards}");
    }

    #[test]
    #[should_panic(expected = "at least one rule")]
    fn zero_rules_panics() {
        let _ = Synthesizer::new(0).firewall(0);
    }
}

#[cfg(test)]
mod calibration_tests {
    use super::*;

    #[test]
    fn generator_tracks_its_profile() {
        // Structural statistics of a large sample should sit near the
        // profile's probabilities (tolerance ±0.1 at n = 1000).
        let profile = SynthProfile::default();
        let fw = Synthesizer::with_profile(1234, profile.clone()).firewall(1000);
        let stats = fw.stats();
        let n = stats.rules as f64;
        let close = |observed: usize, p: f64, name: &str| {
            let f = observed as f64 / n;
            assert!(
                (f - p).abs() < 0.1,
                "{name}: observed {f:.3}, profile {p:.3}"
            );
        };
        close(stats.constrained_per_field[0], profile.p_src, "src");
        close(stats.constrained_per_field[1], profile.p_dst, "dst");
        close(stats.constrained_per_field[2], profile.p_sport, "sport");
        close(stats.constrained_per_field[3], profile.p_dport, "dport");
        close(stats.constrained_per_field[4], profile.p_proto, "proto");
        // Pools bound distinct sets.
        assert!(stats.distinct_sets_per_field[0] <= profile.prefix_pool);
        assert!(stats.distinct_sets_per_field[3] <= profile.port_pool);
        // All generated rules are simple (single interval per field).
        assert_eq!(stats.simple_rules, stats.rules);
    }

    #[test]
    fn discard_share_matches_profile() {
        let profile = SynthProfile::default();
        let fw = Synthesizer::with_profile(77, profile.clone()).firewall(1000);
        let stats = fw.stats();
        let discard_share = (stats.decisions[1] + stats.decisions[3]) as f64 / stats.rules as f64;
        assert!(
            (discard_share - profile.p_discard).abs() < 0.1,
            "discard share {discard_share:.3} vs profile {:.3}",
            profile.p_discard
        );
    }
}
