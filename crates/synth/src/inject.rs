//! Error injection for the §8.1 **effectiveness experiment**.
//!
//! The paper redesigns an 87-rule policy and finds 84 functional
//! discrepancies against the original; of the 82 that were the original's
//! fault, 72 came from **incorrect rule ordering** (mostly new rules wrongly
//! added at the top over the years) and the rest from **missing rules**.
//! [`inject_errors`] reproduces those two error classes on a correct
//! policy, so the comparison pipeline's ability to find *all* of them can
//! be measured against ground truth.

use fw_model::{Firewall, Rule};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// What [`inject_errors`] did to the policy, for ground-truth accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectedError {
    /// A copy of rule `source` was inserted at the top with its decision
    /// inverted — the "new rule wrongly added to the beginning" class.
    OrderingShadow {
        /// Index of the shadowed rule in the *original* policy.
        source: usize,
    },
    /// Rule `index` (original numbering) was deleted.
    MissingRule {
        /// Index of the deleted rule in the *original* policy.
        index: usize,
    },
}

/// A flawed policy plus the ground-truth list of injected errors.
#[derive(Debug, Clone)]
pub struct InjectionOutcome {
    /// The flawed policy (the "original firewall" of §8.1, which the
    /// redesign is compared against).
    pub flawed: Firewall,
    /// Every injected error, in application order.
    pub errors: Vec<InjectedError>,
}

/// Injects `ordering` incorrect-ordering errors and `missing` missing-rule
/// errors into `correct`, deterministically per seed.
///
/// An ordering error copies a random non-catch-all rule to the top of the
/// policy with its decision inverted: exactly the "administrator adds a new
/// rule to the beginning and unknowingly changes the meaning of the rules
/// below" failure §8.1 describes. A missing error deletes a random
/// non-catch-all rule.
///
/// # Panics
///
/// Panics if the policy is too small to host the requested error count
/// (needs at least `missing + 1` rules).
pub fn inject_errors(
    correct: &Firewall,
    ordering: usize,
    missing: usize,
    seed: u64,
) -> InjectionOutcome {
    assert!(
        correct.len() > missing,
        "cannot delete {missing} rules from a {}-rule policy",
        correct.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut errors = Vec::with_capacity(ordering + missing);
    let mut flawed = correct.clone();

    // Missing rules first (indices refer to the original policy).
    let mut candidates: Vec<usize> = (0..correct.len().saturating_sub(1)).collect();
    candidates.shuffle(&mut rng);
    let mut doomed: Vec<usize> = candidates.into_iter().take(missing).collect();
    doomed.sort_unstable();
    for &i in doomed.iter().rev() {
        flawed = flawed
            .with_rule_removed(i)
            .expect("candidate indices are in range");
        errors.push(InjectedError::MissingRule { index: i });
    }

    // Ordering errors: shadow random surviving rules from the top.
    for _ in 0..ordering {
        if flawed.len() <= 1 {
            break;
        }
        let source = rng.random_range(0..flawed.len() - 1);
        let rule: &Rule = &flawed.rules()[source];
        let shadow = rule.with_decision(rule.decision().inverted());
        flawed = flawed
            .with_rule_inserted(0, shadow)
            .expect("index 0 is always valid");
        errors.push(InjectedError::OrderingShadow { source });
    }

    InjectionOutcome { flawed, errors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Synthesizer;

    #[test]
    fn injection_is_deterministic_and_counted() {
        let correct = Synthesizer::new(30).firewall(40);
        let a = inject_errors(&correct, 5, 3, 77);
        let b = inject_errors(&correct, 5, 3, 77);
        assert_eq!(a.flawed, b.flawed);
        assert_eq!(a.errors.len(), 8);
        assert_eq!(a.flawed.len(), 40 - 3 + 5);
    }

    #[test]
    fn injected_errors_are_discoverable() {
        let correct = Synthesizer::new(31).firewall(30);
        let out = inject_errors(&correct, 4, 2, 5);
        let ds = fw_core::compare_firewalls(&out.flawed, &correct).unwrap();
        // The flawed policy genuinely differs (shadowing with inverted
        // decisions over non-empty effective regions almost surely changes
        // semantics), and every reported region is a real difference.
        for d in &ds {
            let w = d.witness();
            assert_eq!(out.flawed.decision_for(&w), Some(d.left()));
            assert_eq!(correct.decision_for(&w), Some(d.right()));
        }
    }

    #[test]
    fn zero_errors_is_identity() {
        let correct = Synthesizer::new(32).firewall(20);
        let out = inject_errors(&correct, 0, 0, 0);
        assert_eq!(out.flawed, correct);
        assert!(out.errors.is_empty());
    }

    #[test]
    fn paper_mix_72_ordering_10_missing() {
        // The §8.1 mix on the 87-rule documented policy.
        let correct = crate::documented_firewall();
        let out = inject_errors(&correct, 72, 10, 1984);
        assert_eq!(
            out.errors
                .iter()
                .filter(|e| matches!(e, InjectedError::OrderingShadow { .. }))
                .count(),
            72
        );
        assert_eq!(
            out.errors
                .iter()
                .filter(|e| matches!(e, InjectedError::MissingRule { .. }))
                .count(),
            10
        );
        assert_eq!(out.flawed.len(), 87 - 10 + 72);
    }

    #[test]
    #[should_panic(expected = "cannot delete")]
    fn too_many_missing_panics() {
        let correct = Synthesizer::new(33).firewall(3);
        let _ = inject_errors(&correct, 0, 3, 0);
    }
}
