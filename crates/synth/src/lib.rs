//! Synthetic workloads for evaluating diverse firewall design (paper §8).
//!
//! Everything the evaluation needs that the authors could not publish —
//! their university's confidential policies, their design teams, their
//! traffic — is synthesised here, deterministically:
//!
//! * [`Synthesizer`] — seeded policy generator following the real-life rule
//!   statistics the paper cites (Gupta \[13]): pooled site prefixes,
//!   well-known ports, protocol skew, catch-all tail (§8.2.2).
//! * [`perturb`] — the Fig. 12 model: select `x%` of a policy's rules, flip
//!   the decisions of a random share, delete the rest (§8.2.1).
//! * [`university_large`] / [`university_average`] /
//!   [`documented_firewall`] — fixed-seed stand-ins for the paper's
//!   661-rule, 42-rule and 87-rule real-life policies.
//! * [`inject_errors`] — the §8.1 error classes (incorrect ordering,
//!   missing rules) with ground-truth accounting.
//! * [`PacketTrace`] — deterministic packet samples with a compact binary
//!   encoding, used as a sampling oracle and benchmark input.
//!
//! # Example
//!
//! ```
//! use fw_synth::{perturb, Synthesizer};
//!
//! let original = Synthesizer::new(1).firewall(200);
//! let edited = perturb(&original, 10, 7); // Fig. 12 with x = 10
//! let impact = fw_core::ChangeImpact::between(&original, &edited).unwrap();
//! println!("{} regions changed", impact.discrepancies().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod evolve;
mod generator;
mod inject;
mod perturb;
mod real_life;
mod trace;

pub use evolve::{evolve, EvolutionProfile, EvolutionStep};
pub use generator::{SynthProfile, Synthesizer};
pub use inject::{inject_errors, InjectedError, InjectionOutcome};
pub use perturb::{perturb, perturb_fleet};
pub use real_life::{documented_firewall, university_average, university_large};
pub use trace::PacketTrace;
