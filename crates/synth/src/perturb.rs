//! The **Fig. 12 perturbation model** (paper §8.2.1): derive a second
//! version from a real policy the way the paper simulates two design teams.
//!
//! For a policy and a fraction `x`: select `x%` of the rules at random into
//! a set `S`; pick `y ~ U(0, 100)`; flip the decision of `y%` of `S`;
//! delete the remaining `(100 − y)%` of `S` from the policy. The original
//! and the perturbed policy then share `(1 − x%) · n` rules, exactly the
//! workload Fig. 12 sweeps over `x ∈ {5 … 50}`.

use fw_model::Firewall;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Applies the Fig. 12 perturbation: selects `percent`% of the rules, flips
/// the decision of a uniformly random share of them and deletes the rest.
///
/// The final rule (the comprehensiveness catch-all) is never deleted — a
/// rule sequence must stay comprehensive to be a firewall (§3.1) — though
/// its decision may flip.
///
/// Returns the perturbed policy; the same `(firewall, percent, seed)`
/// triple always produces the same output.
///
/// # Panics
///
/// Panics if `percent > 100`.
pub fn perturb(fw: &Firewall, percent: u32, seed: u64) -> Firewall {
    assert!(percent <= 100, "percent must be in 0..=100");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = fw.len();
    let k = (n * percent as usize) / 100;
    // Select k distinct rule indices.
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let selected = &mut indices[..k];
    selected.sort_unstable();

    // y ~ U(0, 100): share of the selected rules whose decision flips.
    let y: u32 = rng.random_range(0..=100);
    let flips = (selected.len() * y as usize) / 100;

    let mut rules = fw.rules().to_vec();
    let mut to_delete = Vec::new();
    for (pos, &i) in selected.iter().enumerate() {
        if pos < flips {
            rules[i] = rules[i].with_decision(rules[i].decision().inverted());
        } else if i + 1 < n {
            to_delete.push(i);
        } else {
            // Never delete the trailing catch-all; flip it instead.
            rules[i] = rules[i].with_decision(rules[i].decision().inverted());
        }
    }
    for &i in to_delete.iter().rev() {
        rules.remove(i);
    }
    Firewall::new(fw.schema().clone(), rules).expect("perturbation keeps rules valid")
}

/// A synthetic tenant fleet: `n` independent Fig. 12 perturbations of one
/// base policy — the multi-tenant workload of the fleet registry, where
/// every tenant is a near-copy of a golden policy and structural sharing
/// should make the fleet cost its deltas, not `n` full images.
///
/// Member `i` is `perturb(base, percent, seed_i)` with `seed_i` derived
/// from `(seed, i)` by a splitmix64 step, so fleets are deterministic per
/// `(base, n, percent, seed)` and members are mutually independent; the
/// same member index yields the same tenant across runs and fleet sizes.
///
/// # Panics
///
/// Panics if `percent > 100`.
pub fn perturb_fleet(base: &Firewall, n: usize, percent: u32, seed: u64) -> Vec<Firewall> {
    (0..n)
        .map(|i| {
            // splitmix64 of (seed, i): decorrelates member seeds even for
            // consecutive indices and adjacent base seeds.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            perturb(base, percent, z ^ (z >> 31))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Synthesizer;

    #[test]
    fn perturbation_is_deterministic() {
        let fw = Synthesizer::new(5).firewall(60);
        assert_eq!(perturb(&fw, 20, 9), perturb(&fw, 20, 9));
        assert_ne!(perturb(&fw, 20, 9), perturb(&fw, 20, 10));
    }

    #[test]
    fn zero_percent_is_identity() {
        let fw = Synthesizer::new(5).firewall(60);
        assert_eq!(perturb(&fw, 0, 1), fw);
    }

    #[test]
    fn output_stays_comprehensive_and_comparable() {
        let fw = Synthesizer::new(6).firewall(40);
        for seed in 0..10 {
            let p = perturb(&fw, 50, seed);
            assert!(p.is_comprehensive_syntactically());
            assert!(p.len() <= fw.len());
            assert!(p.len() >= fw.len() - fw.len() / 2);
            // The pair feeds the comparison pipeline without error.
            let ds = fw_core::compare_firewalls(&fw, &p).unwrap();
            // Soundness of the reported discrepancies.
            for d in ds {
                let w = d.witness();
                assert_eq!(fw.decision_for(&w), Some(d.left()));
                assert_eq!(p.decision_for(&w), Some(d.right()));
            }
        }
    }

    #[test]
    fn hundred_percent_touches_every_rule() {
        let fw = Synthesizer::new(7).firewall(30);
        let p = perturb(&fw, 100, 3);
        // All rules selected: each either flipped or deleted; shared
        // unmodified rules only by decision-flip coincidence.
        assert!(p.len() <= fw.len());
    }

    #[test]
    #[should_panic(expected = "percent")]
    fn over_100_percent_panics() {
        let fw = Synthesizer::new(8).firewall(10);
        let _ = perturb(&fw, 101, 0);
    }

    /// Fleet determinism regression: same inputs ⇒ identical fleet,
    /// member-for-member; prefixes agree across fleet sizes; different
    /// seeds (and different member indices) diverge.
    #[test]
    fn fleet_is_deterministic_and_prefix_stable() {
        let base = Synthesizer::new(11).firewall(50);
        let a = perturb_fleet(&base, 16, 10, 42);
        let b = perturb_fleet(&base, 16, 10, 42);
        assert_eq!(a, b);
        // Member i doesn't depend on fleet size.
        let prefix = perturb_fleet(&base, 4, 10, 42);
        assert_eq!(&a[..4], &prefix[..]);
        // Seeds and indices decorrelate.
        let other = perturb_fleet(&base, 16, 10, 43);
        assert_ne!(a, other);
        assert!(a.windows(2).any(|w| w[0] != w[1]));
        // Every member stays a valid comprehensive policy.
        for m in &a {
            assert!(m.is_comprehensive_syntactically());
        }
    }
}
