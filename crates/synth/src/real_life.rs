//! Deterministic stand-ins for the paper's confidential real-life policies.
//!
//! The paper evaluates on a 661-rule university firewall, a 42-rule
//! average-size firewall (§8.2.1; "in real-life firewalls … the average
//! number of rules is 50" \[13]) and an 87-rule well-documented policy for
//! the §8.1 effectiveness experiment. Real configurations are confidential
//! — the paper says so itself — so these builders synthesise policies with
//! the same sizes and the structural statistics of
//! [`crate::Synthesizer`], under fixed seeds so every experiment is
//! reproducible bit for bit.

use fw_model::Firewall;

use crate::{SynthProfile, Synthesizer};

/// Seed namespace for the stand-in policies (stable across releases).
const LARGE_SEED: u64 = 0x_D5F0_0661;
const AVERAGE_SEED: u64 = 0x_D5F0_0042;
const DOCUMENTED_SEED: u64 = 0x_D5F0_0087;

/// The large real-life firewall of §8.2.1: **661 rules**.
pub fn university_large() -> Firewall {
    Synthesizer::new(LARGE_SEED).firewall(661)
}

/// The average-size real-life firewall of §8.2.1: **42 rules**.
pub fn university_average() -> Firewall {
    Synthesizer::new(AVERAGE_SEED).firewall(42)
}

/// The well-documented **87-rule** policy the §8.1 effectiveness experiment
/// redesigns. A slightly tighter profile (smaller pools) mimics a policy
/// whose rules were accreted by hand over years.
pub fn documented_firewall() -> Firewall {
    let profile = SynthProfile {
        prefix_pool: 14,
        port_pool: 10,
        ..SynthProfile::default()
    };
    Synthesizer::with_profile(DOCUMENTED_SEED, profile).firewall(87)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_the_paper() {
        assert_eq!(university_large().len(), 661);
        assert_eq!(university_average().len(), 42);
        assert_eq!(documented_firewall().len(), 87);
    }

    #[test]
    fn builders_are_stable() {
        assert_eq!(university_average(), university_average());
        assert_eq!(documented_firewall(), documented_firewall());
    }

    #[test]
    fn average_policy_converts_to_fdd() {
        let fdd = fw_core::Fdd::from_firewall(&university_average()).unwrap();
        fdd.validate().unwrap();
    }
}
