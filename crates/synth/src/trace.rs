//! Packet traces: random packet samples with a compact binary wire format.
//!
//! Traces serve two jobs in the evaluation harness: (a) a sampling oracle —
//! replay the same trace through two policies (or a policy and its FDD) and
//! compare decisions; (b) benchmark input for per-packet evaluation. The
//! wire format is a fixed-width little-endian layout built with `bytes`, so
//! large traces round-trip without any per-packet allocation on encode.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fw_model::{ModelError, Packet, Schema};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A sequence of packets over one schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketTrace {
    schema: Schema,
    packets: Vec<Packet>,
}

impl PacketTrace {
    /// Generates `n` uniformly random packets over `schema`,
    /// deterministically per seed.
    pub fn random(schema: Schema, n: usize, seed: u64) -> PacketTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let maxes: Vec<u64> = schema.iter().map(|(_, f)| f.max()).collect();
        let packets = (0..n)
            .map(|_| Packet::new(maxes.iter().map(|&m| rng.random_range(0..=m)).collect()))
            .collect();
        PacketTrace { schema, packets }
    }

    /// Generates `n` packets biased toward a policy's interesting regions:
    /// each packet starts from the witness of a uniformly chosen rule and
    /// re-randomises each field with probability `scatter`. With
    /// `scatter = 1.0` this degenerates to [`PacketTrace::random`]; small
    /// values concentrate traffic on rule boundaries, where evaluation and
    /// comparison bugs hide.
    ///
    /// # Panics
    ///
    /// Panics if `scatter` is not within `0.0..=1.0`.
    pub fn biased(fw: &fw_model::Firewall, n: usize, scatter: f64, seed: u64) -> PacketTrace {
        assert!(
            (0.0..=1.0).contains(&scatter),
            "scatter must be in 0.0..=1.0"
        );
        let schema = fw.schema().clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let maxes: Vec<u64> = schema.iter().map(|(_, f)| f.max()).collect();
        let witnesses: Vec<Packet> = fw.witnesses();
        let packets = (0..n)
            .map(|_| {
                let base = &witnesses[rng.random_range(0..witnesses.len())];
                let values = base
                    .values()
                    .iter()
                    .zip(&maxes)
                    .map(|(&v, &m)| {
                        if rng.random_bool(scatter) {
                            rng.random_range(0..=m)
                        } else {
                            v
                        }
                    })
                    .collect();
                Packet::new(values)
            })
            .collect();
        PacketTrace { schema, packets }
    }

    /// Generates `n` packets drawn Zipf-style from a pool of repeated
    /// flows, modelling the heavy skew of real traffic (a handful of
    /// elephant flows dominate; most flows are mice). The flow pool is a
    /// [`PacketTrace::biased`] sample over `fw` (so hot flows sit on rule
    /// boundaries, not in the catch-all), and flow `k` (1-based by rank)
    /// is drawn with probability proportional to `k^-s`. Larger `s` means
    /// heavier skew; `s = 0` degenerates to uniform-over-pool.
    /// Deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not finite and non-negative.
    pub fn zipf(fw: &fw_model::Firewall, n: usize, s: f64, seed: u64) -> PacketTrace {
        assert!(
            s.is_finite() && s >= 0.0,
            "zipf exponent must be finite and non-negative"
        );
        let schema = fw.schema().clone();
        // Pool size scales with the trace so hit rates reflect skew, not a
        // trivially tiny working set.
        let flows = (n / 16).clamp(1, 4096);
        let pool = PacketTrace::biased(fw, flows, 0.3, seed ^ 0x9e37_79b9_7f4a_7c15);
        // Inverse-CDF sampling over the (unnormalised) generalised
        // harmonic weights k^-s.
        let mut acc = 0.0f64;
        let cdf: Vec<f64> = (1..=flows)
            .map(|k| {
                acc += (k as f64).powf(-s);
                acc
            })
            .collect();
        let total = acc;
        let mut rng = StdRng::seed_from_u64(seed);
        let packets = (0..n)
            .map(|_| {
                let u = rng.random::<f64>() * total;
                let idx = cdf.partition_point(|&c| c < u).min(flows - 1);
                pool.packets[idx].clone()
            })
            .collect();
        PacketTrace { schema, packets }
    }

    /// Wraps existing packets (validating each against the schema).
    ///
    /// # Errors
    ///
    /// Returns the first packet's validation error, if any.
    pub fn new(schema: Schema, packets: Vec<Packet>) -> Result<PacketTrace, ModelError> {
        for p in &packets {
            p.validate(&schema)?;
        }
        Ok(PacketTrace { schema, packets })
    }

    /// The trace's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The packets, in order.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Encodes the trace: `u32` packet count, then each packet as `d`
    /// little-endian `u64`s in schema order.
    pub fn encode(&self) -> Bytes {
        let d = self.schema.len();
        let mut buf = BytesMut::with_capacity(4 + self.packets.len() * d * 8);
        buf.put_u32_le(u32::try_from(self.packets.len()).expect("trace exceeds u32 packets"));
        for p in &self.packets {
            for &v in p.values() {
                buf.put_u64_le(v);
            }
        }
        buf.freeze()
    }

    /// Writes the encoded trace to `path`, so the `fwclass` and bench
    /// binaries can replay one shared trace file instead of re-synthesizing
    /// per run.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, &self.encode()[..])
    }

    /// Reads a trace previously written by [`PacketTrace::write_to`] for
    /// the same schema.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Parse`] for unreadable files (carrying the I/O
    /// message) and the usual [`PacketTrace::decode`] errors for malformed
    /// or out-of-domain content.
    pub fn read_from(
        schema: Schema,
        path: impl AsRef<std::path::Path>,
    ) -> Result<PacketTrace, ModelError> {
        let path = path.as_ref();
        let data = std::fs::read(path).map_err(|e| ModelError::Parse {
            line: 0,
            message: format!("{}: {e}", path.display()),
        })?;
        PacketTrace::decode(schema, Bytes::from(data))
    }

    /// Decodes a trace previously produced by [`PacketTrace::encode`] for
    /// the same schema.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Parse`] on truncated input and the usual
    /// validation errors for out-of-domain values.
    pub fn decode(schema: Schema, mut bytes: Bytes) -> Result<PacketTrace, ModelError> {
        if bytes.remaining() < 4 {
            return Err(ModelError::Parse {
                line: 0,
                message: "trace header truncated".into(),
            });
        }
        let n = bytes.get_u32_le() as usize;
        let d = schema.len();
        if bytes.remaining() < n * d * 8 {
            return Err(ModelError::Parse {
                line: 0,
                message: "trace body truncated".into(),
            });
        }
        let mut packets = Vec::with_capacity(n);
        for _ in 0..n {
            let values = (0..d).map(|_| bytes.get_u64_le()).collect();
            let p = Packet::new(values);
            p.validate(&schema)?;
            packets.push(p);
        }
        Ok(PacketTrace { schema, packets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_traces_are_deterministic_and_valid() {
        let schema = Schema::tcp_ip();
        let a = PacketTrace::random(schema.clone(), 100, 5);
        let b = PacketTrace::random(schema.clone(), 100, 5);
        assert_eq!(a, b);
        for p in a.packets() {
            p.validate(&schema).unwrap();
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let schema = Schema::paper_example();
        let t = PacketTrace::random(schema.clone(), 64, 9);
        let bytes = t.encode();
        assert_eq!(bytes.len(), 4 + 64 * 5 * 8);
        let back = PacketTrace::decode(schema, bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn file_round_trip_and_missing_file() {
        let schema = Schema::tcp_ip();
        let t = PacketTrace::random(schema.clone(), 32, 7);
        let path = std::env::temp_dir().join("fw_synth_trace_round_trip.trace");
        t.write_to(&path).unwrap();
        let back = PacketTrace::read_from(schema.clone(), &path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).unwrap();
        assert!(PacketTrace::read_from(schema, &path).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let schema = Schema::paper_example();
        let t = PacketTrace::random(schema.clone(), 4, 1);
        let bytes = t.encode();
        let cut = bytes.slice(0..bytes.len() - 3);
        assert!(PacketTrace::decode(schema.clone(), cut).is_err());
        assert!(PacketTrace::decode(schema, Bytes::from_static(&[1])).is_err());
    }

    #[test]
    fn validation_on_construction() {
        let schema = Schema::paper_example();
        let bad = Packet::new(vec![9, 0, 0, 0, 0]); // iface domain is [0,1]
        assert!(PacketTrace::new(schema, vec![bad]).is_err());
    }

    #[test]
    fn biased_traces_hit_specific_rules() {
        use fw_model::paper;
        let fw = paper::team_a();
        // Fully concentrated: every packet is some rule's witness.
        let tight = PacketTrace::biased(&fw, 200, 0.0, 3);
        for p in tight.packets() {
            p.validate(fw.schema()).unwrap();
            assert!(fw.first_match(p).is_some());
        }
        // Non-catch-all rules get hit far more often than under uniform
        // sampling (rule 1's region is ~2^-49 of the space uniformly).
        let hits_rule0 = tight
            .packets()
            .iter()
            .filter(|p| fw.first_match(p) == Some(0))
            .count();
        assert!(hits_rule0 > 10, "rule 0 hit only {hits_rule0} times");
        // Determinism and scatter bounds.
        assert_eq!(
            PacketTrace::biased(&fw, 50, 0.5, 9),
            PacketTrace::biased(&fw, 50, 0.5, 9)
        );
    }

    #[test]
    fn zipf_traces_are_deterministic_valid_and_skewed() {
        use fw_model::paper;
        use std::collections::HashMap;
        let fw = paper::team_a();
        let t = PacketTrace::zipf(&fw, 4000, 1.0, 11);
        assert_eq!(t.len(), 4000);
        for p in t.packets() {
            p.validate(fw.schema()).unwrap();
        }
        assert_eq!(t, PacketTrace::zipf(&fw, 4000, 1.0, 11));
        assert_ne!(t, PacketTrace::zipf(&fw, 4000, 1.0, 12));

        // Skew shape: under s = 1.0 the single hottest flow must carry far
        // more than its uniform share (pool is 4000/16 = 250 flows, so
        // uniform would give ~16 repeats), and heavier exponents
        // concentrate harder.
        let top_share = |trace: &PacketTrace| {
            let mut counts: HashMap<&[u64], usize> = HashMap::new();
            for p in trace.packets() {
                *counts.entry(p.values()).or_default() += 1;
            }
            counts.into_values().max().unwrap()
        };
        let hot_1 = top_share(&t);
        assert!(hot_1 > 200, "hottest flow carried only {hot_1}/4000");
        let hot_0 = top_share(&PacketTrace::zipf(&fw, 4000, 0.0, 11));
        let hot_2 = top_share(&PacketTrace::zipf(&fw, 4000, 2.0, 11));
        assert!(
            hot_0 < hot_1 && hot_1 < hot_2,
            "{hot_0} < {hot_1} < {hot_2}"
        );
    }

    #[test]
    #[should_panic(expected = "zipf exponent")]
    fn zipf_rejects_bad_exponent() {
        let _ = PacketTrace::zipf(&fw_model::paper::team_a(), 1, f64::NAN, 0);
    }

    #[test]
    #[should_panic(expected = "scatter")]
    fn biased_rejects_bad_scatter() {
        let _ = PacketTrace::biased(&fw_model::paper::team_a(), 1, 1.5, 0);
    }

    #[test]
    fn trace_as_sampling_oracle() {
        use fw_model::paper;
        let fw = paper::team_a();
        let fdd = fw_core::Fdd::from_firewall(&fw).unwrap();
        let trace = PacketTrace::random(fw.schema().clone(), 500, 42);
        for p in trace.packets() {
            assert_eq!(fw.decision_for(p), fdd.decision_for(p));
        }
    }
}
