//! Why FDDs and not BDDs? The §7.5 baseline, measured.
//!
//! The paper reports that a BDD-based comparator produces discrepancies
//! that are not human readable: BDD nodes test single *bits*, so rule-like
//! output must be extracted as bit-level cubes, and "comparing two small
//! firewalls results in millions of rules". This example runs both
//! comparators on the same policy pairs and prints the output sizes side
//! by side.
//!
//! Run with: `cargo run --release --example bdd_baseline`

use diverse_firewall::bdd::{diff, BddManager, DecisionBdds};
use diverse_firewall::core::diff_firewalls;
use diverse_firewall::model::{paper, Firewall};
use diverse_firewall::synth::Synthesizer;

fn compare_both_ways(name: &str, a: &Firewall, b: &Firewall) {
    // FDD pipeline: field-level, coalesced, human readable.
    let prod = diff_firewalls(a, b).expect("comparison succeeds");
    let fdd_rows = prod.discrepancies().len();

    // BDD pipeline: bit-level XOR of the decision encodings.
    let mut m = BddManager::new(a.schema().clone());
    let ea = DecisionBdds::from_firewall(&mut m, a);
    let eb = DecisionBdds::from_firewall(&mut m, b);
    let d = diff(&mut m, &ea, &eb);
    let cubes = m.cube_count(d);
    let nodes = m.node_count(d);

    println!(
        "{name}: FDD output {fdd_rows} human-readable rows | BDD diff {nodes} nodes, \
         {cubes} bit-level cubes ({}x blow-up)",
        if fdd_rows == 0 {
            0
        } else {
            cubes / fdd_rows as u128
        }
    );

    // Show what one BDD "rule" looks like — a conjunction of single bits.
    if let Some(cube) = m.cubes(d, 1).first() {
        let rendered: Vec<String> = cube
            .iter()
            .map(|&(var, val)| format!("bit{var}={}", u8::from(val)))
            .collect();
        println!("  sample BDD cube: {}", rendered.join(" ∧ "));
    }
    if let Some(row) = prod.discrepancies().first() {
        println!("  sample FDD row:  {}", row.display(a.schema()));
    }
}

fn main() {
    // The paper's running example: 3 FDD rows vs hundreds of bit cubes.
    compare_both_ways(
        "paper example (Tables 1 vs 2)",
        &paper::team_a(),
        &paper::team_b(),
    );

    // Small synthetic policies: the gap grows fast.
    for n in [10usize, 25, 50] {
        let a = Synthesizer::new(500 + n as u64).firewall(n);
        let b = Synthesizer::new(900 + n as u64).firewall(n);
        compare_both_ways(&format!("synthetic n={n}"), &a, &b);
    }
}
