//! Change impact analysis (§1.3, §8.1): what exactly does a policy edit do?
//!
//! The paper found that most real firewall errors came from administrators
//! inserting new rules at the top of a policy without seeing the side
//! effects on the rules below. This example takes a realistic mid-size
//! policy, applies the edits an administrator might make, and prints the
//! *exact* impact of each — every packet region whose decision changed.
//!
//! Run with: `cargo run --example change_impact`

use diverse_firewall::core::{ChangeImpact, Edit};
use diverse_firewall::diverse::report::{impact_report, impact_report_attributed};
use diverse_firewall::model::{Decision, FieldId, IntervalSet, Predicate, Rule};
use diverse_firewall::synth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An average-size policy (42 rules, the size the paper reports as
    // typical for real deployments).
    let policy = synth::university_average();
    println!(
        "policy under management: {} rules over ({})",
        policy.len(),
        policy.schema()
    );

    // ── Change 1: block an emerging worm port at the top ────────────────
    // New threat: block TCP destination port 5554 (the paper's motivating
    // scenario — "new network threats such as worms may emerge").
    let block_worm = Rule::new(
        Predicate::any(policy.schema())
            .with_field(FieldId(3), IntervalSet::from_value(5554))?
            .with_field(FieldId(4), IntervalSet::from_value(6))?,
        Decision::DiscardLog,
    );
    let (after_1, impact_1) = ChangeImpact::of_edits(
        &policy,
        &[Edit::Insert {
            index: 0,
            rule: block_worm,
        }],
    )?;
    println!("\n=== change 1: insert worm-port block at the top ===");
    // The attributed report names the first-match rule on each side, so
    // the administrator can jump straight to the responsible lines.
    print!("{}", impact_report_attributed(&policy, &after_1, &impact_1));

    // ── Change 2: a careless cleanup that swaps two rules ───────────────
    let (_, impact_2) = ChangeImpact::of_edits(
        &after_1,
        &[Edit::Swap {
            first: 1,
            second: 2,
        }],
    )?;
    println!("\n=== change 2: swap rules 1 and 2 ===");
    print!("{}", impact_report(&after_1, &impact_2));
    if impact_2.is_noop() {
        println!("(the two rules do not conflict, so the swap was safe)");
    } else {
        println!("(the rules conflict: the swap silently changed the policy!)");
    }

    // ── Change 3: delete a rule believed redundant ──────────────────────
    let victim = after_1.len() / 2;
    let (_, impact_3) = ChangeImpact::of_edits(&after_1, &[Edit::Remove { index: victim }])?;
    println!("\n=== change 3: delete rule {victim} ===");
    print!("{}", impact_report(&after_1, &impact_3));
    if impact_3.is_noop() {
        println!("(rule {victim} really was redundant — the deletion is safe)");
    }

    // Cross-check with the redundancy analyzer from fw-gen.
    let report = diverse_firewall::gen::analyze_redundancy(&after_1);
    println!(
        "\nredundancy analysis of the current policy: {} redundant rule(s) {:?}",
        report.redundant.len(),
        report
            .redundant
            .iter()
            .map(|&(i, k)| format!("r{i}:{k:?}"))
            .collect::<Vec<_>>()
    );
    Ok(())
}
