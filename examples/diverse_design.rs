//! Diverse design with more than two teams (§7.3), including a team that
//! designs directly in FDDs (§7.2) rather than as a rule sequence.
//!
//! Three teams implement the same DMZ specification; the N-way direct
//! comparison finds every region where they do not all agree; a majority
//! resolution settles each; and the final firewall is generated and
//! verified against all three designs.
//!
//! Run with: `cargo run --example diverse_design`

use diverse_firewall::core::{label, FddBuilder};
use diverse_firewall::diverse::report::{comparison_report, resolution_report};
use diverse_firewall::diverse::{cross_compare_parallel, finalize, Comparison, Resolution};
use diverse_firewall::gen::generate_rules;
use diverse_firewall::model::{Decision, FieldDef, FieldId, Firewall, Schema};

/// The shared specification: a web server (10.0.0.80) serves HTTP/HTTPS to
/// everyone; the management subnet 10.0.1.0/24 may SSH anywhere inside;
/// everything else inbound is dropped.
fn schema() -> Schema {
    Schema::new(vec![
        FieldDef::new("src", 32).expect("static widths"),
        FieldDef::new("dst", 32).expect("static widths"),
        FieldDef::new("dport", 16).expect("static widths"),
        FieldDef::new("proto", 8).expect("static widths"),
    ])
    .expect("static schema")
}

fn team_red() -> Firewall {
    Firewall::parse(
        schema(),
        "dst=10.0.0.80, dport=80|443, proto=6 -> accept\n\
         src=10.0.1.0/24, dport=22, proto=6 -> accept\n\
         * -> discard\n",
    )
    .expect("static policy parses")
}

fn team_green() -> Firewall {
    // Green forgot to pin SSH to TCP and listed the web ports separately.
    Firewall::parse(
        schema(),
        "dst=10.0.0.80, dport=80, proto=6 -> accept\n\
         dst=10.0.0.80, dport=443, proto=6 -> accept\n\
         src=10.0.1.0/24, dport=22 -> accept\n\
         * -> discard\n",
    )
    .expect("static policy parses")
}

fn team_blue() -> Firewall {
    // Blue designs directly as an FDD (§7.2) — but scoped SSH to the web
    // server only, a different reading of "anywhere inside".
    let s = schema();
    let mut b = FddBuilder::new(s.clone());
    let acc = b.terminal(Decision::Accept);
    let dis = b.terminal(Decision::Discard);
    // dport level under the web-server destination: 22/80/443 accepted.
    let ports = b
        .internal(
            FieldId(2),
            vec![
                (label(0, 21), dis),
                (label(22, 22), acc),
                (label(23, 79), dis),
                (label(80, 80), acc),
                (label(81, 442), dis),
                (label(443, 443), acc),
                (label(444, 65535), dis),
            ],
        )
        .expect("static diagram");
    let dst = b
        .internal(
            FieldId(1),
            vec![
                (label(0, 0x0A00_004F), dis),
                (label(0x0A00_0050, 0x0A00_0050), ports), // 10.0.0.80
                (label(0x0A00_0051, u64::from(u32::MAX)), dis),
            ],
        )
        .expect("static diagram");
    let fdd = b.finish(dst).expect("static diagram is a valid FDD");
    generate_rules(&fdd).expect("generation from a valid FDD succeeds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let versions = vec![team_red(), team_green(), team_blue()];
    let names = ["Red", "Green", "Blue"];
    for (n, v) in names.iter().zip(&versions) {
        println!("Team {n}:\n{v}");
    }

    // Cross comparison (§7.3): every pair, compared in parallel.
    println!("=== cross comparison (pairwise) ===");
    for ((i, j), ds) in cross_compare_parallel(&versions)? {
        println!("{} vs {}: {} discrepancies", names[i], names[j], ds.len());
    }

    // Direct N-way comparison: one pass, all teams at once.
    let cmp = Comparison::of(versions)?;
    println!("\n=== direct 3-way comparison ===");
    print!("{}", comparison_report(&cmp, &names));

    // Majority resolution (ties break toward discard — fail safe).
    let res = Resolution::by_majority(&cmp);
    println!("\n=== majority resolution ===");
    print!("{}", resolution_report(&res, &names));

    let agreed = finalize(&cmp, &res)?;
    println!("\n=== final agreed firewall ===\n{agreed}");
    Ok(())
}
