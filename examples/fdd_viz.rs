//! Render the paper's Figures 2–5 as Graphviz DOT.
//!
//! Writes `figure2.dot` … `figure5.dot` into the current directory (the
//! FDDs constructed from Team A's and Team B's firewalls, and the
//! semi-isomorphic pair after shaping), plus reduced variants, and prints
//! size statistics for each. Render with e.g.
//! `dot -Tsvg figure2.dot > figure2.svg`.
//!
//! Run with: `cargo run --example fdd_viz`

use diverse_firewall::core::{shape_pair, Fdd};
use diverse_firewall::model::paper;

fn report(name: &str, fdd: &Fdd) -> Result<(), std::io::Error> {
    let stats = fdd.stats();
    println!(
        "{name}: {} nodes ({} terminals), {} edges, {} paths, depth {}",
        stats.nodes, stats.terminals, stats.edges, stats.paths, stats.depth
    );
    std::fs::write(format!("{name}.dot"), fdd.to_dot())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figures 2 and 3: the FDDs constructed from Tables 1 and 2. The
    // paper draws them reduced for readability; write both forms.
    let fig2 = Fdd::from_firewall(&paper::team_a())?;
    let fig3 = Fdd::from_firewall(&paper::team_b())?;
    report("figure2", &fig2.reduced())?;
    report("figure3", &fig3.reduced())?;

    // Figures 4 and 5: the semi-isomorphic pair after shaping.
    let mut fig4 = fig2.to_simple();
    let mut fig5 = fig3.to_simple();
    shape_pair(&mut fig4, &mut fig5)?;
    report("figure4", &fig4)?;
    report("figure5", &fig5)?;

    println!("wrote figure2.dot .. figure5.dot — render with `dot -Tsvg figureN.dot`");
    Ok(())
}
