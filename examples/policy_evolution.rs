//! A year in the life of a firewall: longitudinal change-impact analysis.
//!
//! Replays a simulated administration history (threat blocks at the top,
//! service openings, cleanups) and, for every step, computes its exact
//! impact — flagging the changes that silently affected far more traffic
//! than an administrator would expect, and measuring the "policy rot"
//! (accumulated redundancy) at the end.
//!
//! Run with: `cargo run --release --example policy_evolution`

use diverse_firewall::core::{ChangeImpact, Edit};
use diverse_firewall::gen::analyze_redundancy;
use diverse_firewall::synth::{evolve, EvolutionProfile, Synthesizer};

fn describe(edit: &Edit) -> String {
    match edit {
        Edit::Insert { index: 0, .. } => "block new threat (insert at top)".to_owned(),
        Edit::Insert { index, .. } => format!("open service (insert at {index})"),
        Edit::Remove { index } => format!("cleanup: delete rule {index}"),
        Edit::Swap { first, second } => format!("cleanup: swap rules {first} and {second}"),
        Edit::Replace { index, .. } => format!("flip decision of rule {index}"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let initial = Synthesizer::new(2026).firewall(30);
    println!("initial policy: {} rules", initial.len());

    let history = evolve(&initial, 24, &EvolutionProfile::default(), 7);
    let mut prev = initial.clone();
    let mut risky = 0usize;
    for (month, step) in history.iter().enumerate() {
        let impact = ChangeImpact::between(&prev, &step.after)?;
        let regions = impact.discrepancies().len();
        let packets = impact.affected_packets();
        let flag = if packets > 1u128 << 80 {
            risky += 1;
            "  ⚠ broad impact"
        } else if impact.is_noop() {
            "  (no semantic change)"
        } else {
            ""
        };
        println!(
            "step {:>2}: {:<38} -> {:>3} region(s), {:>28} packet(s){}",
            month + 1,
            describe(&step.edit),
            regions,
            packets,
            flag
        );
        prev = step.after.clone();
    }

    let last = &history.last().expect("non-empty history").after;
    println!(
        "\nfinal policy: {} rules (started at {})",
        last.len(),
        initial.len()
    );
    println!("{risky} step(s) had unusually broad impact — candidates for review");

    // Policy rot: how much of the grown policy is dead weight?
    let report = analyze_redundancy(last);
    println!("redundant rules accumulated: {}", report.redundant.len());
    let compact = diverse_firewall::gen::remove_redundant_rules(last)?;
    println!(
        "after compaction: {} rules (semantics preserved)",
        compact.len()
    );
    assert!(fw_core::equivalent(last, &compact)?);

    // And the total drift over the whole period, as one change-impact run.
    let total = ChangeImpact::between(&initial, last)?;
    println!(
        "total drift vs the initial policy: {} region(s), {} packet(s)",
        total.discrepancies().len(),
        total.affected_packets()
    );
    Ok(())
}
