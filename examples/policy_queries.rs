//! Design-phase policy queries (the paper's companion ref [20]): each team
//! interrogates its own draft before the cross-team comparison.
//!
//! Queries run on the FDD, so answers are exact regions — no packet
//! enumeration, no sampling.
//!
//! Run with: `cargo run --example policy_queries`

use diverse_firewall::core::{any_match, query_firewall};
use diverse_firewall::model::{paper, Decision, FieldId, Interval, IntervalSet, Predicate};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fw = paper::team_a();
    let schema = fw.schema().clone();
    println!("policy under review (Team A, Table 1):\n{fw}");

    // Q1: which inbound packets can reach the mail server?
    let inbound_mail = Predicate::any(&schema)
        .with_field(FieldId(0), IntervalSet::from_value(0))?
        .with_field(FieldId(2), IntervalSet::from_value(paper::MAIL_SERVER))?;
    println!("Q1: inbound traffic accepted for the mail server:");
    for region in query_firewall(&fw, &inbound_mail, Decision::Accept)? {
        println!("  {}", region.display(&schema));
    }

    // Q2: does anything from the malicious domain get through?
    let from_malicious = Predicate::any(&schema)
        .with_field(FieldId(0), IntervalSet::from_value(0))?
        .with_field(
            FieldId(1),
            IntervalSet::from_interval(Interval::new(paper::MALICIOUS_LO, paper::MALICIOUS_HI)?),
        )?;
    let leak = any_match(&fw, &from_malicious, Decision::Accept)?;
    println!("\nQ2: does Team A accept anything from 224.168.0.0/16? {leak}");
    if leak {
        println!("    the leaking regions:");
        for region in query_firewall(&fw, &from_malicious, Decision::Accept)? {
            println!("  {}", region.display(&schema));
        }
        println!("    (this is exactly the hole discrepancy 1 of Table 3 exposes)");
    }

    // Q3: the same question against Team B's design — no leak.
    let safe = any_match(&paper::team_b(), &from_malicious, Decision::Accept)?;
    println!("\nQ3: does Team B accept anything from 224.168.0.0/16? {safe}");
    Ok(())
}
