//! Quickstart: the paper's running example end to end (§2, Tables 1–7).
//!
//! Two teams design a firewall for the same specification; the comparison
//! phase finds every functional discrepancy (Table 3); the discrepancies
//! are resolved as in Table 4; and the final firewall is generated and
//! cross-checked via both of §6's methods.
//!
//! Run with: `cargo run --example quickstart`

use diverse_firewall::core::ChangeImpact;
use diverse_firewall::diverse::report::{comparison_report, impact_report, resolution_report};
use diverse_firewall::diverse::{finalize, Comparison, Resolution};
use diverse_firewall::model::{paper, Decision, FieldId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── Design phase ────────────────────────────────────────────────────
    // The requirement specification (§2): "The mail server with IP address
    // 192.168.0.1 can receive e-mail packets. The packets from an outside
    // malicious domain 224.168.0.0/16 should be blocked. Other packets
    // should be accepted."
    let team_a = paper::team_a(); // Table 1
    let team_b = paper::team_b(); // Table 2
    println!("Team A's firewall (Table 1):\n{team_a}");
    println!("Team B's firewall (Table 2):\n{team_b}");

    // ── Comparison phase ────────────────────────────────────────────────
    let cmp = Comparison::of(vec![team_a.clone(), team_b.clone()])?;
    println!("── Table 3 ──");
    print!("{}", comparison_report(&cmp, &["Team A", "Team B"]));

    // ── Resolution phase ────────────────────────────────────────────────
    // The teams discuss each discrepancy (§5's three questions) and agree:
    // block mail from the malicious domain, allow non-TCP port-25 traffic,
    // block other ports to the mail server — the paper's Table 4.
    let res = Resolution::by(&cmp, |d| {
        let proto = d.predicate().set(FieldId(4));
        let src = d.predicate().set(FieldId(1));
        let non_tcp_smtp = proto.contains(paper::UDP) && !proto.contains(paper::TCP);
        if non_tcp_smtp && !src.contains(paper::MALICIOUS_LO) {
            Decision::Accept
        } else {
            Decision::Discard
        }
    });
    println!("── Table 4 ──");
    print!("{}", resolution_report(&res, &["Team A", "Team B"]));

    // Generate the agreed firewall: Method 1 (corrected FDD → rules,
    // Table 5) and Method 2 from both bases (Tables 6–7) are built and
    // cross-verified inside `finalize`.
    let agreed = finalize(&cmp, &res)?;
    println!("── final agreed firewall (Tables 5–7, all equivalent) ──\n{agreed}");

    // The final firewall's *change impact* relative to each team's design
    // is exactly the regions that team had wrong.
    for (name, version) in [("Team A", &team_a), ("Team B", &team_b)] {
        let impact = ChangeImpact::between(version, &agreed)?;
        println!("impact of adopting the agreed firewall over {name}'s design:");
        print!("{}", impact_report(version, &impact));
        println!();
    }
    Ok(())
}
