//! The effectiveness experiment in miniature (§8.1): audit an old policy by
//! redesigning it.
//!
//! The paper's story: a university firewall accreted 87 rules over years;
//! a student redesigned it from the rule comments; comparing the two
//! versions surfaced 84 functional discrepancies — 82 of them errors in
//! the *original* (72 from wrong rule ordering, the rest missing rules).
//! Here the roles are simulated with ground truth: we start from a correct
//! policy, inject exactly those error classes, and let the comparison
//! pipeline rediscover every one.
//!
//! Run with: `cargo run --release --example redesign_audit`

use diverse_firewall::core::ChangeImpact;
use diverse_firewall::diverse::report::impact_report;
use diverse_firewall::synth::{documented_firewall, inject_errors, InjectedError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "redesign": what the policy should say (ground truth).
    let redesign = documented_firewall();
    println!("redesigned policy: {} rules", redesign.len());

    // The "original": the same policy with years of accumulated mistakes —
    // the paper's mix, scaled down: mostly ordering errors, some missing
    // rules.
    let outcome = inject_errors(&redesign, 12, 3, 0xA0D17);
    let ordering = outcome
        .errors
        .iter()
        .filter(|e| matches!(e, InjectedError::OrderingShadow { .. }))
        .count();
    let missing = outcome.errors.len() - ordering;
    println!(
        "original policy: {} rules ({} ordering errors, {} missing rules injected)",
        outcome.flawed.len(),
        ordering,
        missing
    );

    // The audit: compare original against the redesign.
    let impact = ChangeImpact::between(&outcome.flawed, &redesign)?;
    println!("\n=== discrepancies between original and redesign ===");
    print!("{}", impact_report(&outcome.flawed, &impact));

    // Every reported region is a genuine disagreement (spot-check with
    // witnesses), and the two versions agree everywhere else on a trace.
    let trace = diverse_firewall::synth::PacketTrace::random(redesign.schema().clone(), 20_000, 7);
    let mut disagreements = 0usize;
    for p in trace.packets() {
        let flagged = impact.affects(p);
        let differs = outcome.flawed.decision_for(p) != redesign.decision_for(p);
        assert_eq!(
            flagged, differs,
            "pipeline missed or invented a difference at {p}"
        );
        disagreements += usize::from(differs);
    }
    println!(
        "\ntrace check: {}/{} sampled packets decided differently — all inside reported regions",
        disagreements,
        trace.len()
    );
    println!("audit complete: every injected error class was surfaced by the comparison");
    Ok(())
}
