//! `fwclass` — compile a firewall policy into the flat `fw-exec` matcher
//! and replay a packet trace through it; the command-line face of the
//! compiled classification runtime.
//!
//! ```text
//! USAGE:
//!     fwclass [--schema tcp-ip|paper] [--format dsl|iptables]
//!             [--trace FILE | --random N | --biased N] [--scatter F]
//!             [--seed S] [--engine scalar|columns|lanes] [--lane-width W]
//!             [--save-trace FILE] [--save-compiled FILE]
//!             [--check] <policy.fw>
//!
//! ENGINE (default scalar):
//!     --engine scalar   row-major walk, packet by packet
//!     --engine columns  field-major scalar walk over a transposed batch
//!     --engine lanes    level-synchronous lane kernel over the same batch
//!     --lane-width W    packets in flight per lane-kernel chunk
//!                       (default 32; only meaningful with --engine lanes)
//!
//! TRACE SOURCE (default --random 100000):
//!     --trace FILE    replay a trace file written by --save-trace (or the
//!                     bench harness) instead of synthesizing one
//!     --random N      N uniformly random packets over the schema
//!     --biased N      N packets biased toward the policy's rule regions
//!     --scatter F     per-field re-randomisation probability for --biased
//!                     (default 0.3)
//!     --seed S        RNG seed for synthesized traces (default 1)
//!
//! OUTPUT:
//!     compiler stats (nodes, arena bytes, max depth), per-decision packet
//!     counts, and throughput for the compiled matcher vs the O(n·d)
//!     linear first-match scan
//!
//!     --check         also replay via the plain FDD walk and verify all
//!                     three engines agree on every packet of the trace
//!     --save-trace    write the replayed trace for later runs
//!     --save-compiled write the compiled matcher's wire image
//! ```
//!
//! Policy files use the rule DSL of `fw_model::parse` or `iptables-save`
//! output with `--format iptables`, exactly as `fwdiff`.

use std::process::ExitCode;
use std::time::Instant;

use diverse_firewall::exec::CompiledFdd;
use diverse_firewall::model::{Decision, Firewall, Schema};
use diverse_firewall::synth::PacketTrace;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fwclass [--schema tcp-ip|paper] [--format dsl|iptables] \
         [--trace FILE | --random N | --biased N] [--scatter F] [--seed S] \
         [--engine scalar|columns|lanes] [--lane-width W] \
         [--save-trace FILE] [--save-compiled FILE] [--check] <policy.fw>"
    );
    ExitCode::from(2)
}

enum TraceSource {
    Random(usize),
    Biased(usize),
    File(String),
}

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Scalar,
    Columns,
    Lanes,
}

impl Engine {
    fn name(self) -> &'static str {
        match self {
            Engine::Scalar => "scalar",
            Engine::Columns => "columns",
            Engine::Lanes => "lanes",
        }
    }
}

fn main() -> ExitCode {
    let mut schema = Schema::tcp_ip();
    let mut iptables = false;
    let mut source = TraceSource::Random(100_000);
    let mut scatter = 0.3f64;
    let mut seed = 1u64;
    let mut engine = Engine::Scalar;
    let mut lane_width = diverse_firewall::exec::DEFAULT_LANE_WIDTH;
    let mut save_trace: Option<String> = None;
    let mut save_compiled: Option<String> = None;
    let mut check = false;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schema" => match args.next().as_deref() {
                Some("tcp-ip") => schema = Schema::tcp_ip(),
                Some("paper") => schema = Schema::paper_example(),
                other => {
                    eprintln!("fwclass: unknown schema {other:?}");
                    return usage();
                }
            },
            "--format" => match args.next().as_deref() {
                Some("dsl") => iptables = false,
                Some("iptables") => {
                    iptables = true;
                    schema = Schema::tcp_ip();
                }
                other => {
                    eprintln!("fwclass: unknown format {other:?}");
                    return usage();
                }
            },
            "--trace" => match args.next() {
                Some(f) => source = TraceSource::File(f),
                None => return usage(),
            },
            "--random" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => source = TraceSource::Random(n),
                None => {
                    eprintln!("fwclass: --random needs a packet count");
                    return usage();
                }
            },
            "--biased" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => source = TraceSource::Biased(n),
                None => {
                    eprintln!("fwclass: --biased needs a packet count");
                    return usage();
                }
            },
            "--scatter" => match args.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(f) if (0.0..=1.0).contains(&f) => scatter = f,
                _ => {
                    eprintln!("fwclass: --scatter needs a probability in 0..=1");
                    return usage();
                }
            },
            "--seed" => match args.next().and_then(|n| n.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("fwclass: --seed needs an integer");
                    return usage();
                }
            },
            "--engine" => match args.next().as_deref() {
                Some("scalar") => engine = Engine::Scalar,
                Some("columns") => engine = Engine::Columns,
                Some("lanes") => engine = Engine::Lanes,
                other => {
                    eprintln!("fwclass: unknown engine {other:?}");
                    return usage();
                }
            },
            "--lane-width" => match args.next().and_then(|n| n.parse().ok()) {
                Some(w) if w >= 1 => lane_width = w,
                _ => {
                    eprintln!("fwclass: --lane-width needs a positive integer");
                    return usage();
                }
            },
            "--save-trace" => match args.next() {
                Some(f) => save_trace = Some(f),
                None => return usage(),
            },
            "--save-compiled" => match args.next() {
                Some(f) => save_compiled = Some(f),
                None => return usage(),
            },
            "--check" => check = true,
            "--help" | "-h" => {
                println!("fwclass: compiled packet classification over a policy file");
                return usage();
            }
            _ if arg.starts_with('-') => {
                eprintln!("fwclass: unknown flag {arg}");
                return usage();
            }
            _ => files.push(arg),
        }
    }
    let [policy_path] = files.as_slice() else {
        return usage();
    };

    let fw: Firewall = {
        let text = match std::fs::read_to_string(policy_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fwclass: {policy_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let parsed = if iptables {
            diverse_firewall::model::iptables::parse(&text)
        } else {
            Firewall::parse(schema.clone(), &text)
        };
        match parsed {
            Ok(fw) => fw,
            Err(e) => {
                eprintln!("fwclass: {policy_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let schema = fw.schema().clone();

    let t = Instant::now();
    let compiled = match CompiledFdd::from_firewall(&fw) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fwclass: compile failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compile_time = t.elapsed();
    let s = compiled.stats();
    println!(
        "compiled {} rules in {compile_time:?}: {} nodes ({} search, {} jump, {} terminal), \
         {} cut points, {} jump entries, {} arena bytes, depth <= {}, {} levels",
        fw.len(),
        s.nodes,
        s.search_nodes,
        s.jump_nodes,
        s.terminals,
        s.cut_points,
        s.jump_entries,
        s.arena_bytes,
        s.max_depth,
        s.levels
    );

    let trace = match &source {
        TraceSource::Random(n) => PacketTrace::random(schema.clone(), *n, seed),
        TraceSource::Biased(n) => PacketTrace::biased(&fw, *n, scatter, seed),
        TraceSource::File(path) => match PacketTrace::read_from(schema.clone(), path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fwclass: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    if trace.is_empty() {
        eprintln!("fwclass: empty trace");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &save_trace {
        if let Err(e) = trace.write_to(path) {
            eprintln!("fwclass: {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote trace ({} packets) to {path}", trace.len());
    }
    if let Some(path) = &save_compiled {
        if let Err(e) = std::fs::write(path, &compiled.encode()[..]) {
            eprintln!("fwclass: {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote compiled matcher to {path}");
    }

    // Column engines transpose up front; the transpose (with its one-pass
    // per-column validation) is deliberately outside the timed region, the
    // same way the bench harness amortises it over a replayed batch.
    let batch = if engine == Engine::Scalar {
        None
    } else {
        match diverse_firewall::exec::PacketBatch::from_trace(schema.clone(), trace.packets()) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("fwclass: trace does not fit the schema: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let t = Instant::now();
    let mut decisions = Vec::new();
    let classified = match (engine, &batch) {
        (Engine::Scalar, _) => {
            compiled.classify_batch_into(trace.packets(), &mut decisions);
            Ok(())
        }
        (Engine::Columns, Some(b)) => compiled.classify_columns_into(b, &mut decisions),
        (Engine::Lanes, Some(b)) => compiled.classify_lanes_into(b, lane_width, &mut decisions),
        _ => unreachable!("batch built for every column engine"),
    };
    if let Err(e) = classified {
        eprintln!("fwclass: classification failed: {e}");
        return ExitCode::FAILURE;
    }
    let compiled_time = t.elapsed();

    let t = Instant::now();
    let linear: Vec<Decision> = trace
        .packets()
        .iter()
        .map(|p| fw.decision_for(p).expect("validated trace packets match"))
        .collect();
    let linear_time = t.elapsed();

    let mut counts = [0usize; Decision::ALL.len()];
    for d in &decisions {
        counts[d.code() as usize] += 1;
    }
    for d in Decision::ALL {
        println!("{d}: {} packet(s)", counts[d.code() as usize]);
    }

    let mpps = |n: usize, secs: f64| n as f64 / secs / 1e6;
    let n = trace.len();
    println!(
        "compiled matcher ({}): {compiled_time:?} ({:.2} Mpps) | linear scan: {linear_time:?} \
         ({:.2} Mpps) | speedup x{:.2}",
        engine.name(),
        mpps(n, compiled_time.as_secs_f64()),
        mpps(n, linear_time.as_secs_f64()),
        linear_time.as_secs_f64() / compiled_time.as_secs_f64()
    );

    if decisions != linear {
        eprintln!(
            "fwclass: BUG: compiled matcher ({}) disagrees with linear scan",
            engine.name()
        );
        return ExitCode::FAILURE;
    }
    if check {
        let fdd = match diverse_firewall::core::Fdd::from_firewall_fast(&fw) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("fwclass: {e}");
                return ExitCode::FAILURE;
            }
        };
        let t = Instant::now();
        let walked: Vec<Decision> = trace.packets().iter().map(|p| fdd.evaluate(p)).collect();
        let walk_time = t.elapsed();
        if walked != decisions {
            eprintln!("fwclass: BUG: FDD walk disagrees with compiled matcher");
            return ExitCode::FAILURE;
        }
        println!(
            "check: linear scan == FDD walk ({walk_time:?}, {:.2} Mpps) == compiled matcher \
             on all {n} packets",
            mpps(n, walk_time.as_secs_f64())
        );
    }
    ExitCode::SUCCESS
}
