//! `fwclass` — compile a firewall policy into the flat `fw-exec` matcher
//! and replay a packet trace through it; the command-line face of the
//! compiled classification runtime.
//!
//! ```text
//! USAGE:
//!     fwclass [--schema tcp-ip|paper] [--format dsl|iptables]
//!             [--trace FILE | --random N | --biased N | --zipf N]
//!             [--scatter F] [--zipf-s S] [--seed S]
//!             [--engine scalar|columns|lanes|auto]
//!             [--lane-width W] [--threads T] [--cache CAP]
//!             [--save-trace FILE] [--save-compiled FILE]
//!             [--edits FILE] [--check] <policy.fw>
//!
//! ENGINE (default scalar):
//!     --engine scalar   row-major walk, packet by packet
//!     --engine columns  field-major scalar walk over a transposed batch
//!     --engine lanes    level-synchronous lane kernel over the same batch
//!     --engine auto     race every engine (FDD walk included) over a
//!                       sample of the trace, then replay through the
//!                       winner; prints each trial and the chosen engine
//!     --lane-width W    packets in flight per lane-kernel chunk
//!                       (default 32; only meaningful with --engine lanes)
//!     --threads T       worker threads for the parallel lane pipeline and
//!                       the calibrator's thread ladder (default 1; 0 means
//!                       every available core)
//!     --cache CAP       front the replay with a CAP-entry decision cache:
//!                       hits serve from the cache, misses go through the
//!                       selected engine and are inserted back. The timed
//!                       replay runs warm (an untimed fill pass precedes
//!                       it) and a cache stats line (hits/misses/hit rate)
//!                       prints after it. With --engine auto the
//!                       calibrator races a `cache+` arm too and its trial
//!                       line is printed with the rest
//!
//! TRACE SOURCE (default --random 100000):
//!     --trace FILE    replay a trace file written by --save-trace (or the
//!                     bench harness) instead of synthesizing one
//!     --random N      N uniformly random packets over the schema
//!     --biased N      N packets biased toward the policy's rule regions
//!     --zipf N        N packets drawn Zipf-style from a pool of repeated
//!                     flows — the skewed shape the decision cache exists
//!                     for
//!     --scatter F     per-field re-randomisation probability for --biased
//!                     (default 0.3)
//!     --zipf-s S      Zipf exponent for --zipf (default 1.0)
//!     --seed S        RNG seed for synthesized traces (default 1)
//!
//! OUTPUT:
//!     compiler stats (nodes, arena bytes, max depth), per-decision packet
//!     counts, and throughput for the compiled matcher vs the O(n·d)
//!     linear first-match scan
//!
//!     --check         also replay via the plain FDD walk and verify all
//!                     three engines agree on every packet of the trace
//!     --save-trace    write the replayed trace for later runs
//!     --save-compiled write the compiled matcher's wire image
//!
//! EDIT REPLAY:
//!     --edits FILE    after the trace replay, apply the file's policy edits
//!                     one at a time, timing a full recompile
//!                     (CompiledFdd::from_firewall) against the incremental
//!                     splice (CompiledFdd::recompile) for each and
//!                     verifying both agree on the whole trace; then apply
//!                     the whole file again as ONE coalesced batch and
//!                     report the sweep's plan and corridor stats. Lines
//!                     are `insert IDX RULE`, `replace IDX RULE`,
//!                     `remove IDX`, `swap I J` (RULE in the fw_model rule
//!                     DSL); blank lines and `#` comments are skipped.
//! ```
//!
//! Policy files use the rule DSL of `fw_model::parse` or `iptables-save`
//! output with `--format iptables`, exactly as `fwdiff`.

use std::process::ExitCode;
use std::time::Instant;

use diverse_firewall::exec::CompiledFdd;
use diverse_firewall::model::{Decision, Firewall, Schema};
use diverse_firewall::synth::PacketTrace;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fwclass [--schema tcp-ip|paper] [--format dsl|iptables] \
         [--trace FILE | --random N | --biased N | --zipf N] [--scatter F] \
         [--zipf-s S] [--seed S] [--engine scalar|columns|lanes|auto] \
         [--lane-width W] [--threads T] [--cache CAP] [--save-trace FILE] \
         [--save-compiled FILE] [--edits FILE] [--check] <policy.fw>"
    );
    ExitCode::from(2)
}

enum TraceSource {
    Random(usize),
    Biased(usize),
    Zipf(usize),
    File(String),
}

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Scalar,
    Columns,
    Lanes,
    Auto,
}

impl Engine {
    fn name(self) -> &'static str {
        match self {
            Engine::Scalar => "scalar",
            Engine::Columns => "columns",
            Engine::Lanes => "lanes",
            Engine::Auto => "auto",
        }
    }
}

fn main() -> ExitCode {
    let mut schema = Schema::tcp_ip();
    let mut iptables = false;
    let mut source = TraceSource::Random(100_000);
    let mut scatter = 0.3f64;
    let mut zipf_s = 1.0f64;
    let mut seed = 1u64;
    let mut engine = Engine::Scalar;
    let mut lane_width = diverse_firewall::exec::DEFAULT_LANE_WIDTH;
    let mut threads = 1usize;
    let mut cache_capacity = 0usize;
    let mut save_trace: Option<String> = None;
    let mut save_compiled: Option<String> = None;
    let mut edits_file: Option<String> = None;
    let mut check = false;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schema" => match args.next().as_deref() {
                Some("tcp-ip") => schema = Schema::tcp_ip(),
                Some("paper") => schema = Schema::paper_example(),
                other => {
                    eprintln!("fwclass: unknown schema {other:?}");
                    return usage();
                }
            },
            "--format" => match args.next().as_deref() {
                Some("dsl") => iptables = false,
                Some("iptables") => {
                    iptables = true;
                    schema = Schema::tcp_ip();
                }
                other => {
                    eprintln!("fwclass: unknown format {other:?}");
                    return usage();
                }
            },
            "--trace" => match args.next() {
                Some(f) => source = TraceSource::File(f),
                None => return usage(),
            },
            "--random" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => source = TraceSource::Random(n),
                None => {
                    eprintln!("fwclass: --random needs a packet count");
                    return usage();
                }
            },
            "--biased" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => source = TraceSource::Biased(n),
                None => {
                    eprintln!("fwclass: --biased needs a packet count");
                    return usage();
                }
            },
            "--zipf" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => source = TraceSource::Zipf(n),
                None => {
                    eprintln!("fwclass: --zipf needs a packet count");
                    return usage();
                }
            },
            "--scatter" => match args.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(f) if (0.0..=1.0).contains(&f) => scatter = f,
                _ => {
                    eprintln!("fwclass: --scatter needs a probability in 0..=1");
                    return usage();
                }
            },
            "--zipf-s" => match args.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(s) if s.is_finite() && s >= 0.0 => zipf_s = s,
                _ => {
                    eprintln!("fwclass: --zipf-s needs a finite non-negative exponent");
                    return usage();
                }
            },
            "--seed" => match args.next().and_then(|n| n.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("fwclass: --seed needs an integer");
                    return usage();
                }
            },
            "--engine" => match args.next().as_deref() {
                Some("scalar") => engine = Engine::Scalar,
                Some("columns") => engine = Engine::Columns,
                Some("lanes") => engine = Engine::Lanes,
                Some("auto") => engine = Engine::Auto,
                other => {
                    eprintln!("fwclass: unknown engine {other:?}");
                    return usage();
                }
            },
            "--lane-width" => match args.next().and_then(|n| n.parse().ok()) {
                Some(w) if w >= 1 => lane_width = w,
                _ => {
                    eprintln!("fwclass: --lane-width needs a positive integer");
                    return usage();
                }
            },
            "--threads" => match args.next().and_then(|n| n.parse().ok()) {
                Some(t) => threads = t,
                None => {
                    eprintln!("fwclass: --threads needs an integer (0 = all cores)");
                    return usage();
                }
            },
            "--cache" => match args.next().and_then(|n| n.parse().ok()) {
                Some(c) if c >= 1 => cache_capacity = c,
                _ => {
                    eprintln!("fwclass: --cache needs a positive entry capacity");
                    return usage();
                }
            },
            "--save-trace" => match args.next() {
                Some(f) => save_trace = Some(f),
                None => return usage(),
            },
            "--save-compiled" => match args.next() {
                Some(f) => save_compiled = Some(f),
                None => return usage(),
            },
            "--edits" => match args.next() {
                Some(f) => edits_file = Some(f),
                None => return usage(),
            },
            "--check" => check = true,
            "--help" | "-h" => {
                println!("fwclass: compiled packet classification over a policy file");
                return usage();
            }
            _ if arg.starts_with('-') => {
                eprintln!("fwclass: unknown flag {arg}");
                return usage();
            }
            _ => files.push(arg),
        }
    }
    let [policy_path] = files.as_slice() else {
        return usage();
    };

    let fw: Firewall = {
        let text = match std::fs::read_to_string(policy_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fwclass: {policy_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let parsed = if iptables {
            diverse_firewall::model::iptables::parse(&text)
        } else {
            Firewall::parse(schema.clone(), &text)
        };
        match parsed {
            Ok(fw) => fw,
            Err(e) => {
                eprintln!("fwclass: {policy_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let schema = fw.schema().clone();

    let t = Instant::now();
    let compiled = match CompiledFdd::from_firewall(&fw) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fwclass: compile failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compile_time = t.elapsed();
    let s = compiled.stats();
    println!(
        "compiled {} rules in {compile_time:?}: {} nodes ({} search, {} jump, {} terminal), \
         {} cut points, {} jump entries, {} arena bytes, depth <= {}, {} levels",
        fw.len(),
        s.nodes,
        s.search_nodes,
        s.jump_nodes,
        s.terminals,
        s.cut_points,
        s.jump_entries,
        s.arena_bytes,
        s.max_depth,
        s.levels
    );

    let trace = match &source {
        TraceSource::Random(n) => PacketTrace::random(schema.clone(), *n, seed),
        TraceSource::Biased(n) => PacketTrace::biased(&fw, *n, scatter, seed),
        TraceSource::Zipf(n) => PacketTrace::zipf(&fw, *n, zipf_s, seed),
        TraceSource::File(path) => match PacketTrace::read_from(schema.clone(), path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fwclass: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    if trace.is_empty() {
        eprintln!("fwclass: empty trace");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &save_trace {
        if let Err(e) = trace.write_to(path) {
            eprintln!("fwclass: {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote trace ({} packets) to {path}", trace.len());
    }
    if let Some(path) = &save_compiled {
        if let Err(e) = std::fs::write(path, &compiled.encode()[..]) {
            eprintln!("fwclass: {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote compiled matcher to {path}");
    }

    // Column engines transpose up front; the transpose (with its one-pass
    // per-column validation) is deliberately outside the timed region, the
    // same way the bench harness amortises it over a replayed batch.
    let batch = if engine == Engine::Scalar && cache_capacity == 0 {
        None
    } else {
        match diverse_firewall::exec::PacketBatch::from_trace(schema.clone(), trace.packets()) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("fwclass: trace does not fit the schema: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    // The auto engine races every candidate over a trace sample before the
    // timed replay — calibration (and the FDD walk candidate's diagram) is
    // set-up cost, like the transpose above.
    let calibrated = if engine == Engine::Auto {
        let fdd = match diverse_firewall::core::Fdd::from_firewall_fast(&fw) {
            Ok(f) => f.reduced(),
            Err(e) => {
                eprintln!("fwclass: {e}");
                return ExitCode::FAILURE;
            }
        };
        let b = batch.as_ref().expect("batch built for every column engine");
        // A zero capacity makes this the plain `calibrate` race; with
        // --cache the `cache+` arm runs too and prints with the trials.
        let cal = match diverse_firewall::exec::calibrate_with_cache(
            &compiled,
            Some(&fdd),
            Some(trace.packets()),
            b,
            threads,
            cache_capacity,
        ) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("fwclass: calibration failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for t in &cal.trials {
            println!("  trial {:<14} {:7.2} Mpps", t.choice.to_string(), t.mpps);
        }
        println!("calibrated on {} packet(s): {}", cal.sample, cal.choice);
        Some((cal.choice, fdd))
    } else {
        None
    };

    let mut cache = if cache_capacity > 0 {
        match diverse_firewall::exec::DecisionCache::new(schema.clone(), cache_capacity) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("fwclass: --cache: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let mut decisions = Vec::new();
    // With --cache, one untimed fill pass leaves the trace's distinct
    // tuples resident so the timed replay measures warm serving — the
    // steady state a long-lived flow cache actually runs in. The batch
    // front end partitions before inserting, so a cold pass can never hit
    // its own insertions and would only time the fill.
    let cached_plan = cache.as_mut().map(|cache| {
        use diverse_firewall::exec::{EngineChoice, EngineKind};
        let (choice, walk) = match (&calibrated, engine) {
            (Some((choice, fdd)), _) => (choice.with_cache(), Some(fdd)),
            (None, Engine::Scalar) => (
                EngineChoice {
                    kind: EngineKind::Scalar,
                    lane_width: 0,
                    threads: 1,
                    cached: true,
                },
                None,
            ),
            (None, Engine::Columns) => (
                EngineChoice {
                    kind: EngineKind::Columns,
                    lane_width: 0,
                    threads: 1,
                    cached: true,
                },
                None,
            ),
            (None, _) => (
                EngineChoice {
                    kind: EngineKind::Lanes,
                    lane_width,
                    threads,
                    cached: true,
                },
                None,
            ),
        };
        let b = batch
            .as_ref()
            .expect("batch built whenever the cache is on");
        let mut scratch = diverse_firewall::exec::EngineScratch::default();
        let fill =
            choice.classify_cached_into(&compiled, walk, b, cache, &mut scratch, &mut decisions);
        cache.reset_stats();
        (choice, walk, scratch, fill)
    });
    let t = Instant::now();
    let classified = if let Some((choice, walk, mut scratch, fill)) = cached_plan {
        let cache = cache.as_mut().expect("plan implies cache");
        let b = batch
            .as_ref()
            .expect("batch built whenever the cache is on");
        fill.and_then(|()| {
            choice.classify_cached_into(&compiled, walk, b, cache, &mut scratch, &mut decisions)
        })
    } else {
        match (engine, &batch) {
            (Engine::Scalar, _) => {
                compiled.classify_batch_into(trace.packets(), &mut decisions);
                Ok(())
            }
            (Engine::Columns, Some(b)) => compiled.classify_columns_into(b, &mut decisions),
            (Engine::Lanes, Some(b)) if threads == 1 => compiled.classify_lanes_into(
                b,
                lane_width,
                &mut diverse_firewall::exec::LaneScratch::new(),
                &mut decisions,
            ),
            (Engine::Lanes, Some(b)) => compiled.classify_lanes_par_into(
                b,
                lane_width,
                threads,
                &mut diverse_firewall::exec::ParScratch::default(),
                &mut decisions,
            ),
            (Engine::Auto, Some(b)) => {
                let (choice, fdd) = calibrated.as_ref().expect("calibrated above");
                choice.classify_into(
                    &compiled,
                    Some(fdd),
                    Some(trace.packets()),
                    b,
                    &mut diverse_firewall::exec::EngineScratch::default(),
                    &mut decisions,
                )
            }
            _ => unreachable!("batch built for every column engine"),
        }
    };
    if let Err(e) = classified {
        eprintln!("fwclass: classification failed: {e}");
        return ExitCode::FAILURE;
    }
    let compiled_time = t.elapsed();

    let t = Instant::now();
    let linear: Vec<Decision> = trace
        .packets()
        .iter()
        .map(|p| fw.decision_for(p).expect("validated trace packets match"))
        .collect();
    let linear_time = t.elapsed();

    let mut counts = [0usize; Decision::ALL.len()];
    for d in &decisions {
        counts[d.code() as usize] += 1;
    }
    for d in Decision::ALL {
        println!("{d}: {} packet(s)", counts[d.code() as usize]);
    }

    let mpps = |n: usize, secs: f64| n as f64 / secs / 1e6;
    let n = trace.len();
    let engine_label = match &calibrated {
        Some((choice, _)) if cache.is_some() => format!("auto -> {}", choice.with_cache()),
        Some((choice, _)) => format!("auto -> {choice}"),
        None => {
            let base = if engine == Engine::Lanes && threads != 1 {
                format!("lanes, {threads} thread(s)")
            } else {
                engine.name().to_string()
            };
            if cache.is_some() {
                format!("cache+{base}")
            } else {
                base
            }
        }
    };
    println!(
        "compiled matcher ({engine_label}): {compiled_time:?} ({:.2} Mpps, compile {:.0} µs) | \
         linear scan: {linear_time:?} ({:.2} Mpps) | speedup x{:.2}",
        mpps(n, compiled_time.as_secs_f64()),
        compile_time.as_secs_f64() * 1e6,
        mpps(n, linear_time.as_secs_f64()),
        linear_time.as_secs_f64() / compiled_time.as_secs_f64()
    );
    if let Some(cache) = &cache {
        let s = cache.stats();
        println!(
            "cache: {} slot(s), {} resident | {} hit(s), {} miss(es), {} insertion(s), \
             {} evicted | hit rate {:.1}%",
            cache.capacity(),
            cache.len(),
            s.hits,
            s.misses,
            s.insertions,
            s.evicted,
            100.0 * s.hit_rate()
        );
    }

    if decisions != linear {
        eprintln!(
            "fwclass: BUG: compiled matcher ({}) disagrees with linear scan",
            engine.name()
        );
        return ExitCode::FAILURE;
    }
    if check {
        let fdd = match diverse_firewall::core::Fdd::from_firewall_fast(&fw) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("fwclass: {e}");
                return ExitCode::FAILURE;
            }
        };
        let t = Instant::now();
        let walked: Vec<Decision> = trace.packets().iter().map(|p| fdd.evaluate(p)).collect();
        let walk_time = t.elapsed();
        if walked != decisions {
            eprintln!("fwclass: BUG: FDD walk disagrees with compiled matcher");
            return ExitCode::FAILURE;
        }
        println!(
            "check: linear scan == FDD walk ({walk_time:?}, {:.2} Mpps) == compiled matcher \
             on all {n} packets",
            mpps(n, walk_time.as_secs_f64())
        );
    }

    if let Some(path) = &edits_file {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fwclass: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let edits = match parse_edits(&schema, &text) {
            Ok(e) => e,
            Err(m) => {
                eprintln!("fwclass: {path}: {m}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(code) = replay_edits(&fw, &compiled, &trace, &edits) {
            return code;
        }
    }
    ExitCode::SUCCESS
}

/// Parses the `--edits` file: one edit per line (`insert IDX RULE`,
/// `replace IDX RULE`, `remove IDX`, `swap I J`), rules in the DSL of
/// `fw_model::parse`; blank lines and `#` comments skipped.
fn parse_edits(schema: &Schema, text: &str) -> Result<Vec<diverse_firewall::core::Edit>, String> {
    use diverse_firewall::core::Edit;
    let mut edits = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: String| format!("edits line {}: {m}", lineno + 1);
        let (op, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(format!("`{line}` has no operand")))?;
        let rest = rest.trim();
        let index = |s: &str| {
            s.parse::<usize>()
                .map_err(|_| err(format!("bad index `{s}`")))
        };
        match op {
            "insert" | "replace" => {
                let (idx, rule_text) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err(format!("{op} needs an index and a rule")))?;
                let index = index(idx)?;
                let rule = diverse_firewall::model::parse::parse_rule(schema, rule_text.trim())
                    .map_err(|e| err(e.to_string()))?;
                edits.push(if op == "insert" {
                    Edit::Insert { index, rule }
                } else {
                    Edit::Replace { index, rule }
                });
            }
            "remove" => edits.push(Edit::Remove {
                index: index(rest)?,
            }),
            "swap" => {
                let (a, b) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err("swap needs two indices".into()))?;
                edits.push(Edit::Swap {
                    first: index(a.trim())?,
                    second: index(b.trim())?,
                });
            }
            other => return Err(err(format!("unknown edit `{other}`"))),
        }
    }
    Ok(edits)
}

/// Applies each edit in sequence through a persistent [`MaintainedFdd`],
/// timing the maintained pipeline (patch + diff + export + splice)
/// against the full one (whole-policy impact + FDD rebuild + full
/// recompile) and verifying the spliced image agrees with a fresh compile
/// on the whole replay trace after every edit.
fn replay_edits(
    fw: &Firewall,
    compiled: &CompiledFdd,
    trace: &PacketTrace,
    edits: &[diverse_firewall::core::Edit],
) -> Result<(), ExitCode> {
    use diverse_firewall::core::{ChangeImpact, Fdd, MaintainedFdd};
    if edits.is_empty() {
        println!("edit replay: no edits in file");
        return Ok(());
    }
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    let mut cur_fw = fw.clone();
    let mut cur_img = compiled.clone();
    // One chain for the whole replay, patched edit by edit — what a
    // LiveMatcher keeps between batches.
    let mut maintained = match MaintainedFdd::new(fw.clone()) {
        Ok(m) => m,
        Err(err) => {
            eprintln!("fwclass: building maintained FDD: {err}");
            return Err(ExitCode::FAILURE);
        }
    };
    let (mut full_out, mut inc_out) = (Vec::new(), Vec::new());
    let (mut full_total, mut inc_total) = (0f64, 0f64);
    let (mut e2e_full_total, mut e2e_inc_total) = (0f64, 0f64);
    for (i, e) in edits.iter().enumerate() {
        let t = Instant::now();
        let (after, impact) = match ChangeImpact::of_edits(&cur_fw, std::slice::from_ref(e)) {
            Ok(r) => r,
            Err(err) => {
                eprintln!("fwclass: edit {i}: {err}");
                return Err(ExitCode::FAILURE);
            }
        };
        let impact_us = us(t.elapsed());

        let t = Instant::now();
        let full = match CompiledFdd::from_firewall(&after) {
            Ok(c) => c,
            Err(err) => {
                eprintln!("fwclass: edit {i}: full recompile failed: {err}");
                return Err(ExitCode::FAILURE);
            }
        };
        let full_us = us(t.elapsed());

        let t = Instant::now();
        match Fdd::from_firewall_fast(&after) {
            Ok(f) => std::hint::black_box(f.reduced()),
            Err(err) => {
                eprintln!("fwclass: edit {i}: {err}");
                return Err(ExitCode::FAILURE);
            }
        };
        let fdd_us = us(t.elapsed());

        let old_root = maintained.root();
        let t = Instant::now();
        if let Err(err) = maintained.apply(std::slice::from_ref(e)) {
            eprintln!("fwclass: edit {i}: maintained patch failed: {err}");
            return Err(ExitCode::FAILURE);
        }
        let maintain_us = us(t.elapsed());
        let t = Instant::now();
        let m_impact = match maintained.diff_from(old_root) {
            Ok(im) => im,
            Err(err) => {
                eprintln!("fwclass: edit {i}: maintained diff failed: {err}");
                return Err(ExitCode::FAILURE);
            }
        };
        let diff_us = us(t.elapsed());
        let t = Instant::now();
        let m_fdd = match maintained.to_fdd() {
            Ok(f) => f,
            Err(err) => {
                eprintln!("fwclass: edit {i}: maintained export failed: {err}");
                return Err(ExitCode::FAILURE);
            }
        };
        let export_us = us(t.elapsed());
        if m_impact.affected_packets() != impact.affected_packets() {
            eprintln!("fwclass: BUG: edit {i}: maintained impact disagrees with of_edits");
            return Err(ExitCode::FAILURE);
        }

        let t = Instant::now();
        let (inc, stats) = match cur_img.recompile(&m_fdd, &m_impact) {
            Ok(r) => r,
            Err(err) => {
                eprintln!("fwclass: edit {i}: incremental recompile failed: {err}");
                return Err(ExitCode::FAILURE);
            }
        };
        let inc_us = us(t.elapsed());

        full.classify_batch_into(trace.packets(), &mut full_out);
        inc.classify_batch_into(trace.packets(), &mut inc_out);
        if full_out != inc_out {
            eprintln!("fwclass: BUG: edit {i}: maintained image disagrees with full recompile");
            return Err(ExitCode::FAILURE);
        }
        println!(
            "edit {i}: full {full_us:.0} µs | incremental {inc_us:.0} µs (x{:.1}) | \
             {}/{} nodes reused, {} B copied, {} B fresh{} | \
             {} changed region(s), {} affected packet(s), impact {impact_us:.0} µs, \
             fdd {fdd_us:.0} µs | \
             maintained patch {maintain_us:.0} + diff {diff_us:.0} + export {export_us:.0} µs",
            full_us / inc_us,
            stats.nodes_shared,
            stats.nodes,
            stats.bytes_shared,
            stats.bytes_fresh,
            if stats.lane_arena_rebuilt {
                ", lane mirror rebuilt"
            } else {
                ""
            },
            impact.discrepancies().len(),
            // Schema-clamped: a per-region sum can exceed the packet
            // space; never report more packets than exist.
            impact.affected_packets_in(cur_fw.schema()),
        );
        full_total += full_us;
        inc_total += inc_us;
        e2e_full_total += impact_us + fdd_us + inc_us;
        e2e_inc_total += maintain_us + diff_us + export_us + inc_us;
        cur_fw = after;
        cur_img = inc;
    }
    println!(
        "edit replay: {} edit(s), full {full_total:.0} µs vs incremental {inc_total:.0} µs \
         (x{:.1}) | edit-to-image: full pipeline {e2e_full_total:.0} µs vs maintained \
         {e2e_inc_total:.0} µs (x{:.1}), all verified against the trace",
        edits.len(),
        full_total / inc_total,
        e2e_full_total / e2e_inc_total
    );

    // The same file applied as ONE coalesced batch to a fresh chain — the
    // path a LiveMatcher takes for a multi-edit call. Must land on exactly
    // the policy and semantics the edit-by-edit replay reached.
    let mut batch_m = match MaintainedFdd::new(fw.clone()) {
        Ok(m) => m,
        Err(err) => {
            eprintln!("fwclass: building batch chain: {err}");
            return Err(ExitCode::FAILURE);
        }
    };
    let t = Instant::now();
    let (b_impact, b_stats) = match batch_m.apply_edits_with_stats(edits) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("fwclass: batch apply failed: {err}");
            return Err(ExitCode::FAILURE);
        }
    };
    let batch_us = us(t.elapsed());
    if batch_m.firewall() != &cur_fw {
        eprintln!("fwclass: BUG: one-batch replay lands on a different policy");
        return Err(ExitCode::FAILURE);
    }
    let b_fdd = match batch_m.to_fdd() {
        Ok(f) => f,
        Err(err) => {
            eprintln!("fwclass: batch export failed: {err}");
            return Err(ExitCode::FAILURE);
        }
    };
    for p in trace.packets() {
        let linear = cur_fw.decision_for(p).expect("comprehensive policy");
        if b_fdd.evaluate(p) != linear {
            eprintln!("fwclass: BUG: one-batch chain disagrees with first-match at {p}");
            return Err(ExitCode::FAILURE);
        }
    }
    println!(
        "batch replay: {} edit(s) as one {:?} batch in {batch_us:.0} µs | \
         {} corridor(s) spanning {} position(s), {} tail rule(s) shared, \
         {} prepend(s), {} copied | {} affected packet(s), verified against the trace",
        edits.len(),
        b_stats.plan,
        b_stats.corridors,
        b_stats.corridor_span,
        b_stats.tail_shared,
        b_stats.prepends,
        b_stats.copied,
        b_impact.affected_packets_in(cur_fw.schema()),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use diverse_firewall::core::{ChangeImpact, Edit};

    fn schema() -> Schema {
        Schema::tcp_ip()
    }

    #[test]
    fn parse_edits_accepts_all_four_ops() {
        let text = "\
# tighten, then shuffle
insert 0 sport=80 -> discard
replace 1 * -> accept
remove 2
swap 0 3
";
        let edits = parse_edits(&schema(), text).unwrap();
        assert_eq!(edits.len(), 4);
        assert!(matches!(edits[0], Edit::Insert { index: 0, .. }));
        assert!(matches!(edits[1], Edit::Replace { index: 1, .. }));
        assert!(matches!(edits[2], Edit::Remove { index: 2 }));
        assert!(matches!(
            edits[3],
            Edit::Swap {
                first: 0,
                second: 3
            }
        ));
    }

    #[test]
    fn parse_edits_reports_the_failing_line() {
        for (text, needle) in [
            ("replace x * -> accept\n", "bad index"),
            ("widen 0\n", "unknown edit"),
            ("swap 1\n", "swap needs two indices"),
            ("insert 0\n", "insert needs an index and a rule"),
        ] {
            let err = parse_edits(&schema(), text).unwrap_err();
            assert!(err.contains("line 1"), "missing line number: {err}");
            assert!(err.contains(needle), "expected `{needle}` in: {err}");
        }
    }

    /// Regression for the unclamped `affected_packets` rows the recompile
    /// bench used to print: every packet count this binary reports goes
    /// through the schema clamp, which can never exceed the packet space.
    #[test]
    fn reported_affected_packets_never_exceed_the_packet_space() {
        let schema = schema();
        let fw = Firewall::parse(schema.clone(), "* -> accept\n").unwrap();
        // Flip the whole domain: the raw per-region sum equals the entire
        // packet space; the clamped count must not pass it.
        let edits = [Edit::Replace {
            index: 0,
            rule: fw.rules()[0].with_decision(Decision::Discard),
        }];
        let (_, impact) = ChangeImpact::of_edits(&fw, &edits).unwrap();
        assert_eq!(impact.affected_packets_in(&schema), schema.packet_space());
        assert!(impact.affected_packets_in(&schema) <= schema.packet_space());
    }
}
