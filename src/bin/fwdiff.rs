//! `fwdiff` — compare two firewall policy files and print every functional
//! discrepancy; the command-line face of the paper's pipeline.
//!
//! ```text
//! USAGE:
//!     fwdiff [--schema tcp-ip|paper] [--format dsl|iptables] [--lint]
//!            [--jobs N] <before.fw> [<after.fw>]
//!
//! MODES:
//!     two files   change-impact / diverse-design comparison (§1.3, §2):
//!                 prints each region the two policies decide differently,
//!                 with prefix-notation output (§7.1)
//!     --lint      single file: per-policy hygiene — pairwise anomalies
//!                 (shadowing/generalisation/correlation) and exact
//!                 redundancy analysis
//!     --jobs N    run construction + comparison across N worker threads
//!                 (0 = all cores; default 1 = serial); output is
//!                 identical regardless of N
//! ```
//!
//! Policy files use the rule DSL of `fw_model::parse` (one rule per line,
//! `#` comments, e.g. `src=10.0.0.0/8, dport=443, proto=6 -> accept`), or
//! `iptables-save` output with `--format iptables` (implies the tcp-ip
//! schema).

use std::process::ExitCode;

use diverse_firewall::core::{diff_firewalls, diff_firewalls_parallel};
use diverse_firewall::gen::{analyze_anomalies, analyze_redundancy};
use diverse_firewall::model::{Firewall, Schema};

fn usage() -> ExitCode {
    eprintln!(
        "usage: fwdiff [--schema tcp-ip|paper] [--format dsl|iptables] [--lint] \
         [--jobs N] <before.fw> [<after.fw>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut schema = Schema::tcp_ip();
    let mut lint = false;
    let mut iptables = false;
    let mut jobs = 1usize;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schema" => match args.next().as_deref() {
                Some("tcp-ip") => schema = Schema::tcp_ip(),
                Some("paper") => schema = Schema::paper_example(),
                other => {
                    eprintln!("fwdiff: unknown schema {other:?}");
                    return usage();
                }
            },
            "--format" => match args.next().as_deref() {
                Some("dsl") => iptables = false,
                Some("iptables") => {
                    iptables = true;
                    schema = Schema::tcp_ip();
                }
                other => {
                    eprintln!("fwdiff: unknown format {other:?}");
                    return usage();
                }
            },
            "--lint" => lint = true,
            "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => jobs = n,
                None => {
                    eprintln!("fwdiff: --jobs needs a non-negative integer");
                    return usage();
                }
            },
            "--help" | "-h" => {
                println!("fwdiff: compare two firewall policies (Liu & Gouda, DSN 2004)");
                return usage();
            }
            _ if arg.starts_with('-') => {
                eprintln!("fwdiff: unknown flag {arg}");
                return usage();
            }
            _ => files.push(arg),
        }
    }

    let load = |path: &str| -> Result<Firewall, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        if iptables {
            diverse_firewall::model::iptables::parse(&text).map_err(|e| format!("{path}: {e}"))
        } else {
            Firewall::parse(schema.clone(), &text).map_err(|e| format!("{path}: {e}"))
        }
    };

    match (lint, files.as_slice()) {
        (true, [file]) => {
            let fw = match load(file) {
                Ok(fw) => fw,
                Err(e) => {
                    eprintln!("fwdiff: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let anomalies = analyze_anomalies(&fw);
            for a in &anomalies {
                println!("r{} vs r{}: {}", a.earlier + 1, a.later + 1, a.kind);
            }
            let red = analyze_redundancy(&fw);
            for (i, kind) in &red.redundant {
                println!(
                    "r{}: {:?} redundant (removal preserves semantics)",
                    i + 1,
                    kind
                );
            }
            println!(
                "{} rules, {} pairwise anomalies, {} redundant rules",
                fw.len(),
                anomalies.len(),
                red.redundant.len()
            );
            ExitCode::SUCCESS
        }
        (false, [before, after]) => {
            let (a, b) = match (load(before), load(after)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("fwdiff: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let prod = match if jobs == 1 {
                diff_firewalls(&a, &b)
            } else {
                diff_firewalls_parallel(&a, &b, jobs)
            } {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("fwdiff: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if prod.is_equivalent() {
                println!("policies are semantically equivalent");
                return ExitCode::SUCCESS;
            }
            let ds = prod.discrepancies();
            for (i, d) in ds.iter().enumerate() {
                println!("{:>3}. {}", i + 1, d.display(&schema));
            }
            println!(
                "{} discrepancy region(s), {} packet(s) decided differently",
                ds.len(),
                prod.packet_count()
            );
            ExitCode::FAILURE // non-zero: the policies differ (diff-style)
        }
        _ => usage(),
    }
}
