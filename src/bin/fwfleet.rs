//! `fwfleet` — build, serve, edit and persist a multi-tenant fleet of
//! firewall policies through the `fw-fleet` registry; the command-line
//! face of cross-tenant structural sharing.
//!
//! ```text
//! USAGE:
//!     fwfleet [--schema tcp-ip|paper] [--rules N | <policy.fw>]
//!             [--tenants N] [--percent X] [--seed S]
//!             [--random N] [--verify] [--cache CAP]
//!             [--tenant T --edits FILE]
//!             [--save-dir DIR | --load-dir DIR]
//!
//! FLEET SOURCE (default: synthesize):
//!     <policy.fw>     base policy file in the fw_model rule DSL
//!     --rules N       synthesize an N-rule base policy instead (default 100)
//!     --tenants N     fleet size: N perturbed variants of the base
//!                     (default 64; Fig. 12 perturbation per tenant)
//!     --percent X     perturbation strength in percent (default 5)
//!     --seed S        seed for base synthesis and fleet perturbation
//!                     (default 1)
//!     --load-dir DIR  restore a fleet persisted by --save-dir instead of
//!                     synthesizing one (full revalidation + cross-check)
//!
//! SERVING:
//!     --random N      classify N random packets round-robin across all
//!                     tenants through the shared registry, reporting
//!                     aggregate throughput
//!     --verify        also check every decision against the tenant's
//!                     standalone first-match scan
//!     --cache CAP     enable the per-shard decision cache (CAP entries per
//!                     shard) before serving: the --random trace is then
//!                     served as one batch per tenant through the cached
//!                     route, twice — an untimed fill round, then the timed
//!                     warm round — and dedup'd tenants on the same shard
//!                     share warm entries. Prints the aggregated cache
//!                     stats (hits/misses/invalidations/hit rate), and an
//!                     edit receipt's exact-invalidation report when
//!                     --edits runs with the cache on
//!
//! EDITS:
//!     --tenant T      tenant id for --edits
//!     --edits FILE    apply the file's edit batch to tenant T through the
//!                     maintained path and print the receipt (epoch,
//!                     affected packets, batch plan, content dedup). Lines
//!                     are `insert IDX RULE`, `replace IDX RULE`,
//!                     `remove IDX`, `swap I J`; `#` comments skipped.
//!
//! PERSISTENCE:
//!     --save-dir DIR  persist the fleet: manifest + one .rules/.fwex pair
//!                     per distinct policy (content-addressed)
//! ```
//!
//! Always printed: registry occupancy (tenants, distinct policies after
//! content dedup, arena/pool nodes, interned rules) and approximate bytes
//! per tenant — the number that shows what structural sharing buys over
//! one independent matcher per tenant.

use std::process::ExitCode;
use std::time::Instant;

use diverse_firewall::core::Edit;
use diverse_firewall::fleet::{load_fleet, save_fleet, PolicyRegistry, TenantId};
use diverse_firewall::model::{Firewall, Schema};
use diverse_firewall::synth::{perturb_fleet, PacketTrace, Synthesizer};

fn usage() -> ExitCode {
    eprintln!(
        "usage: fwfleet [--schema tcp-ip|paper] [--rules N | <policy.fw>] \
         [--tenants N] [--percent X] [--seed S] [--random N] [--verify] \
         [--cache CAP] [--tenant T --edits FILE] \
         [--save-dir DIR | --load-dir DIR]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut schema = Schema::tcp_ip();
    let mut rules = 100usize;
    let mut tenants = 64usize;
    let mut percent = 5u32;
    let mut seed = 1u64;
    let mut random: Option<usize> = None;
    let mut verify = false;
    let mut cache_capacity = 0usize;
    let mut tenant: Option<u64> = None;
    let mut edits_file: Option<String> = None;
    let mut save_dir: Option<String> = None;
    let mut load_dir: Option<String> = None;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schema" => match args.next().as_deref() {
                Some("tcp-ip") => schema = Schema::tcp_ip(),
                Some("paper") => schema = Schema::paper_example(),
                other => {
                    eprintln!("fwfleet: unknown schema {other:?}");
                    return usage();
                }
            },
            "--rules" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => rules = n,
                _ => {
                    eprintln!("fwfleet: --rules needs a positive integer");
                    return usage();
                }
            },
            "--tenants" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => tenants = n,
                _ => {
                    eprintln!("fwfleet: --tenants needs a positive integer");
                    return usage();
                }
            },
            "--percent" => match args.next().and_then(|n| n.parse().ok()) {
                Some(x) if x <= 100 => percent = x,
                _ => {
                    eprintln!("fwfleet: --percent needs an integer in 0..=100");
                    return usage();
                }
            },
            "--seed" => match args.next().and_then(|n| n.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("fwfleet: --seed needs an integer");
                    return usage();
                }
            },
            "--random" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => random = Some(n),
                None => {
                    eprintln!("fwfleet: --random needs a packet count");
                    return usage();
                }
            },
            "--verify" => verify = true,
            "--cache" => match args.next().and_then(|n| n.parse().ok()) {
                Some(c) if c >= 1 => cache_capacity = c,
                _ => {
                    eprintln!("fwfleet: --cache needs a positive entry capacity");
                    return usage();
                }
            },
            "--tenant" => match args.next().and_then(|n| n.parse().ok()) {
                Some(t) => tenant = Some(t),
                None => {
                    eprintln!("fwfleet: --tenant needs an integer id");
                    return usage();
                }
            },
            "--edits" => match args.next() {
                Some(f) => edits_file = Some(f),
                None => return usage(),
            },
            "--save-dir" => match args.next() {
                Some(d) => save_dir = Some(d),
                None => return usage(),
            },
            "--load-dir" => match args.next() {
                Some(d) => load_dir = Some(d),
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("fwfleet: multi-tenant fleet serving over a shared policy registry");
                return usage();
            }
            _ if arg.starts_with('-') => {
                eprintln!("fwfleet: unknown flag {arg}");
                return usage();
            }
            _ => files.push(arg),
        }
    }
    if files.len() > 1 {
        return usage();
    }

    // Build or restore the fleet.
    let registry = if let Some(dir) = &load_dir {
        let t = Instant::now();
        match load_fleet(std::path::Path::new(dir)) {
            Ok(r) => {
                println!(
                    "restored fleet from {dir} in {:?} (revalidated)",
                    t.elapsed()
                );
                r
            }
            Err(e) => {
                eprintln!("fwfleet: {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let base: Firewall = if let Some(path) = files.first() {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("fwfleet: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Firewall::parse(schema.clone(), &text) {
                Ok(fw) => fw,
                Err(e) => {
                    eprintln!("fwfleet: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            let mut synth = Synthesizer::new(seed);
            if schema != Schema::tcp_ip() {
                eprintln!("fwfleet: --schema paper requires a policy file (synthesis is tcp-ip)");
                return usage();
            }
            synth.firewall(rules)
        };
        let fleet = perturb_fleet(&base, tenants, percent, seed);
        let registry = PolicyRegistry::new();
        let t = Instant::now();
        for (i, fw) in fleet.iter().enumerate() {
            if let Err(e) = registry.add_tenant(TenantId(i as u64), fw.clone()) {
                eprintln!("fwfleet: adding tenant {i}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = registry.maintenance() {
            eprintln!("fwfleet: maintenance: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "built fleet: {} tenants x {}-rule base, {percent}% perturbation, in {:?}",
            fleet.len(),
            base.len(),
            t.elapsed()
        );
        registry
    };

    if cache_capacity > 0 {
        if let Err(e) = registry.enable_cache(cache_capacity) {
            eprintln!("fwfleet: --cache: {e}");
            return ExitCode::FAILURE;
        }
        println!("decision cache enabled: {cache_capacity} entr(ies) per shard");
    }

    let stats = registry.stats();
    println!(
        "registry: {} tenants, {} distinct policies, {} shard(s) | arena {} nodes \
         ({} live), pool {} compiled nodes, {} interned rules | ~{} KiB total, \
         ~{} B/tenant",
        stats.tenants,
        stats.distinct_policies,
        stats.shards,
        stats.arena_nodes,
        stats.arena_live_nodes,
        stats.pool_nodes,
        stats.distinct_rules,
        stats.approx_bytes / 1024,
        stats.bytes_per_tenant()
    );

    // Round-robin serving across the whole fleet.
    if let Some(n) = random {
        let ids = registry.tenant_ids();
        let Some(first) = ids.first() else {
            eprintln!("fwfleet: fleet is empty");
            return ExitCode::FAILURE;
        };
        let schema = match registry.policy(*first) {
            Ok(fw) => fw.schema().clone(),
            Err(e) => {
                eprintln!("fwfleet: {e}");
                return ExitCode::FAILURE;
            }
        };
        let trace = PacketTrace::random(schema.clone(), n, seed);
        let mut counts = vec![0usize; diverse_firewall::model::Decision::ALL.len()];
        if cache_capacity > 0 {
            // Cached serving is batched: the same trace goes to every
            // tenant as one batch, so dedup'd tenants on a shard hit the
            // entries their siblings filled.
            let batch =
                match diverse_firewall::exec::PacketBatch::from_trace(schema, trace.packets()) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("fwfleet: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            let mut out = Vec::new();
            // Untimed fill round: the timed round below then measures warm
            // serving, the steady state of a long-lived flow cache.
            for tenant in &ids {
                if let Err(e) = registry.classify_batch_into(*tenant, &batch, &mut out) {
                    eprintln!("fwfleet: filling cache for {tenant}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            registry.reset_cache_stats();
            let t = Instant::now();
            for tenant in &ids {
                if let Err(e) = registry.classify_batch_into(*tenant, &batch, &mut out) {
                    eprintln!("fwfleet: serving {tenant}: {e}");
                    return ExitCode::FAILURE;
                }
                for d in &out {
                    counts[d.code() as usize] += 1;
                }
            }
            let elapsed = t.elapsed();
            let total = n * ids.len();
            for d in diverse_firewall::model::Decision::ALL {
                println!("{d}: {} packet(s)", counts[d.code() as usize]);
            }
            println!(
                "served {total} packets ({n} per tenant, warm) through the cached route \
                 across {} tenants in {elapsed:?} ({:.2} Mpps aggregate)",
                ids.len(),
                total as f64 / elapsed.as_secs_f64() / 1e6
            );
            if let Some(s) = registry.cache_stats() {
                println!(
                    "cache: {} hit(s), {} miss(es), {} insertion(s), {} invalidated, \
                     {} evicted | hit rate {:.1}%",
                    s.hits,
                    s.misses,
                    s.insertions,
                    s.invalidated,
                    s.evicted,
                    100.0 * s.hit_rate()
                );
            }
            if verify {
                for tenant in &ids {
                    let fw = registry.policy(*tenant).expect("listed tenant");
                    registry
                        .classify_batch_into(*tenant, &batch, &mut out)
                        .expect("served above");
                    for (p, got) in trace.packets().iter().zip(&out) {
                        let want = fw.decision_for(p).expect("comprehensive policy");
                        if *got != want {
                            eprintln!(
                                "fwfleet: BUG: cached registry disagrees with first-match \
                                 for {tenant}"
                            );
                            return ExitCode::FAILURE;
                        }
                    }
                }
                println!("verify: cached registry == first-match scan on all {total} packets");
            }
        } else {
            let t = Instant::now();
            for (i, p) in trace.packets().iter().enumerate() {
                let tenant = ids[i % ids.len()];
                match registry.classify(tenant, p) {
                    Ok(d) => counts[d.code() as usize] += 1,
                    Err(e) => {
                        eprintln!("fwfleet: classifying packet {i} for {tenant}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let elapsed = t.elapsed();
            for d in diverse_firewall::model::Decision::ALL {
                println!("{d}: {} packet(s)", counts[d.code() as usize]);
            }
            println!(
                "served {n} packets round-robin across {} tenants in {elapsed:?} \
                 ({:.2} Mpps aggregate)",
                ids.len(),
                n as f64 / elapsed.as_secs_f64() / 1e6
            );
            if verify {
                for (i, p) in trace.packets().iter().enumerate() {
                    let tenant = ids[i % ids.len()];
                    let fw = registry.policy(tenant).expect("listed tenant");
                    let want = fw.decision_for(p).expect("comprehensive policy");
                    let got = registry.classify(tenant, p).expect("served above");
                    if got != want {
                        eprintln!("fwfleet: BUG: registry disagrees with first-match for {tenant}");
                        return ExitCode::FAILURE;
                    }
                }
                println!("verify: registry == first-match scan on all {n} packets");
            }
        }
    }

    // Per-tenant edit batch through the maintained path.
    match (&edits_file, tenant) {
        (Some(path), Some(t_id)) => {
            let tenant = TenantId(t_id);
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("fwfleet: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let schema = match registry.policy(tenant) {
                Ok(fw) => fw.schema().clone(),
                Err(e) => {
                    eprintln!("fwfleet: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let edits = match parse_edits(&schema, &text) {
                Ok(e) => e,
                Err(m) => {
                    eprintln!("fwfleet: {path}: {m}");
                    return ExitCode::FAILURE;
                }
            };
            let t = Instant::now();
            match registry.apply_edits(tenant, &edits) {
                Ok(r) => {
                    println!(
                        "edited {tenant}: {} edit(s) as one {:?} batch in {:?} | swapped: {} \
                         (epoch {}), {} affected packet(s), {} corridor(s) spanning {} | \
                         content dedup onto existing policy: {}",
                        edits.len(),
                        r.maintain.plan,
                        t.elapsed(),
                        r.swapped,
                        r.epoch,
                        r.affected_packets,
                        r.maintain.corridors,
                        r.maintain.corridor_span,
                        r.merged
                    );
                    if let Some(inv) = &r.cache {
                        println!(
                            "cache invalidation: {:?} arm, {} entr(ies) dropped of {} resident",
                            inv.plan, inv.invalidated, inv.resident
                        );
                    } else if cache_capacity > 0 {
                        println!(
                            "cache invalidation: none needed (pre-edit policy still served \
                             elsewhere or function unchanged)"
                        );
                    }
                    let stats = registry.stats();
                    println!(
                        "registry after edit: {} distinct policies, arena {} nodes ({} live)",
                        stats.distinct_policies, stats.arena_nodes, stats.arena_live_nodes
                    );
                }
                Err(e) => {
                    eprintln!("fwfleet: editing {tenant}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        (Some(_), None) => {
            eprintln!("fwfleet: --edits needs --tenant");
            return usage();
        }
        (None, Some(_)) => {
            eprintln!("fwfleet: --tenant needs --edits");
            return usage();
        }
        (None, None) => {}
    }

    if let Some(dir) = &save_dir {
        let t = Instant::now();
        if let Err(e) = save_fleet(&registry, std::path::Path::new(dir)) {
            eprintln!("fwfleet: saving to {dir}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "saved fleet to {dir} in {:?} ({} distinct policies persisted once each)",
            t.elapsed(),
            registry.stats().distinct_policies
        );
    }
    ExitCode::SUCCESS
}

/// Parses an edit file: `insert IDX RULE`, `replace IDX RULE`,
/// `remove IDX`, `swap I J`; blank lines and `#` comments skipped.
/// Same format as `fwclass --edits`.
fn parse_edits(schema: &Schema, text: &str) -> Result<Vec<Edit>, String> {
    let mut edits = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: String| format!("edits line {}: {m}", lineno + 1);
        let (op, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(format!("`{line}` has no operand")))?;
        let rest = rest.trim();
        let index = |s: &str| {
            s.parse::<usize>()
                .map_err(|_| err(format!("bad index `{s}`")))
        };
        match op {
            "insert" | "replace" => {
                let (idx, rule_text) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err(format!("{op} needs an index and a rule")))?;
                let index = index(idx)?;
                let rule = diverse_firewall::model::parse::parse_rule(schema, rule_text.trim())
                    .map_err(|e| err(e.to_string()))?;
                edits.push(if op == "insert" {
                    Edit::Insert { index, rule }
                } else {
                    Edit::Replace { index, rule }
                });
            }
            "remove" => edits.push(Edit::Remove {
                index: index(rest)?,
            }),
            "swap" => {
                let (a, b) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err("swap needs two indices".into()))?;
                edits.push(Edit::Swap {
                    first: index(a.trim())?,
                    second: index(b.trim())?,
                });
            }
            other => return Err(err(format!("unknown edit `{other}`"))),
        }
    }
    Ok(edits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_edits_matches_the_fwclass_format() {
        let schema = Schema::tcp_ip();
        let text = "\
# fork tenant 3 away from the golden policy
insert 0 sport=80 -> discard
remove 2
swap 0 1
";
        let edits = parse_edits(&schema, text).unwrap();
        assert_eq!(edits.len(), 3);
        assert!(matches!(edits[0], Edit::Insert { index: 0, .. }));
        assert!(matches!(edits[1], Edit::Remove { index: 2 }));
        assert!(matches!(
            edits[2],
            Edit::Swap {
                first: 0,
                second: 1
            }
        ));
        assert!(parse_edits(&schema, "widen 0\n")
            .unwrap_err()
            .contains("unknown edit"));
    }

    #[test]
    fn synthesized_fleet_round_trips_through_the_registry() {
        let base = Synthesizer::new(3).firewall(40);
        let fleet = perturb_fleet(&base, 6, 10, 3);
        let registry = PolicyRegistry::new();
        for (i, fw) in fleet.iter().enumerate() {
            registry.add_tenant(TenantId(i as u64), fw.clone()).unwrap();
        }
        let trace = PacketTrace::random(base.schema().clone(), 200, 9);
        for (i, p) in trace.packets().iter().enumerate() {
            let tenant = TenantId((i % fleet.len()) as u64);
            assert_eq!(
                registry.classify(tenant, p).unwrap(),
                fleet[i % fleet.len()].decision_for(p).unwrap()
            );
        }
    }
}
