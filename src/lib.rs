//! **diverse-firewall** — a complete implementation of *Diverse Firewall
//! Design* (Alex X. Liu and Mohamed G. Gouda, IEEE DSN 2004; extended in
//! IEEE TPDS 19(9), 2008).
//!
//! Firewall policies are ordered, conflicting rule lists; getting them
//! right is hard, and most deployed policies contain errors. The paper's
//! remedy is **design diversity**: several teams design the policy
//! independently from one specification, an algorithm computes *every*
//! functional discrepancy between the versions in human-readable form, the
//! teams resolve each discrepancy, and a final firewall is generated that
//! provably implements the resolution. The same machinery computes the
//! exact **impact of policy changes**.
//!
//! This crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `fw-model` | packets, intervals, rules, policies, prefix ↔ interval conversion, rule DSL |
//! | [`core`] | `fw-core` | FDDs; the construction (§3), shaping (§4) and comparison (§5) algorithms; N-way comparison (§7.3); change impact (§1.3) |
//! | [`gen`] | `fw-gen` | rule generation from FDDs (ref \[12]); complete redundancy removal (ref \[19]) |
//! | [`diverse`] | `fw-diverse` | the three-phase method end to end: comparison, resolution, finalisation (§2, §6), reports |
//! | [`synth`] | `fw-synth` | evaluation workloads: synthetic policies, Fig. 12 perturbation, §8.1 error injection, packet traces |
//! | [`bdd`] | `fw-bdd` | the §7.5 baseline: a from-scratch ROBDD engine and bit-level policy diffing |
//! | [`exec`] | `fw-exec` | compiled packet-classification runtime: flat-arena matcher, batch classify, wire format |
//! | [`fleet`] | `fw-fleet` | multi-tenant fleet serving: policy registry with cross-tenant structural sharing, FWEX fleet persistence |
//!
//! # Quickstart
//!
//! ```
//! # fn main() -> Result<(), fw_diverse::DiverseError> {
//! use diverse_firewall::diverse::{finalize, Comparison, Resolution};
//! use diverse_firewall::model::paper;
//!
//! // Phase 2: compare the two team designs of the paper's Tables 1 and 2.
//! let cmp = Comparison::of(vec![paper::team_a(), paper::team_b()])?;
//! assert_eq!(cmp.discrepancies().len(), 3); // Table 3
//!
//! // Phase 3: resolve each discrepancy and generate the agreed firewall.
//! let res = Resolution::by_majority(&cmp);
//! let agreed = finalize(&cmp, &res)?;
//! println!("{agreed}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fw_bdd as bdd;
pub use fw_core as core;
pub use fw_diverse as diverse;
pub use fw_exec as exec;
pub use fw_fleet as fleet;
pub use fw_gen as gen;
pub use fw_model as model;
pub use fw_synth as synth;
