//! Equivalence oracle for the skew-exploiting decision cache: serving
//! through the cache front end must be byte-identical to the uncached
//! engines and the plain FDD walk — before any edit, and after every edit
//! batch once exact impact-driven invalidation has run. Probed on random
//! policies through interleaved [`LiveMatcher`] and [`PolicyRegistry`]
//! edit batches (affected-region packets included via post-edit biased
//! traces), on the torn probe→edit→insert interleaving the generation
//! guard exists for, and exhaustively on every packet of a tiny 2-field
//! schema across capacities {16, 64, 256} with *both* invalidation arms
//! forced.

use diverse_firewall::core::{ChangeImpact, Fdd};
use diverse_firewall::exec::{
    DecisionCache, EngineScratch, InvalidationPlan, LiveMatcher, PacketBatch, UNTAGGED,
};
use diverse_firewall::fleet::{PolicyRegistry, TenantId};
use diverse_firewall::model::{Decision, FieldDef, Firewall, Packet, Schema};
use diverse_firewall::synth::{evolve, perturb_fleet, EvolutionProfile, PacketTrace, Synthesizer};
use proptest::prelude::*;

fn edits_for(fw: &Firewall, k: usize, seed: u64) -> Vec<diverse_firewall::core::Edit> {
    evolve(fw, k, &EvolutionProfile::default(), seed)
        .into_iter()
        .map(|s| s.edit)
        .collect()
}

/// Probe packets for one round: Zipf-skewed (the cache's home turf),
/// uniformly random, and rule-region-biased against the CURRENT policy —
/// the biased share lands inside the regions the last edit batch changed,
/// so stale survivors would be caught here.
fn probes(fw: &Firewall, n: usize, seed: u64) -> Vec<Packet> {
    let zipf = PacketTrace::zipf(fw, n, 1.0, seed);
    let random = PacketTrace::random(fw.schema().clone(), n, seed + 1);
    let biased = PacketTrace::biased(fw, n, 0.3, seed + 2);
    zipf.packets()
        .iter()
        .chain(random.packets())
        .chain(biased.packets())
        .cloned()
        .collect()
}

/// Serve `packets` through the matcher's cached route twice (cold fill +
/// warm hits) and demand agreement with the uncached route and a fresh
/// FDD walk of the authoritative policy on every packet, both times.
fn assert_cached_serving_agrees(live: &LiveMatcher, packets: &[Packet], tag: &str) {
    let policy = live.policy();
    let fdd = Fdd::from_firewall_fast(&policy).unwrap();
    let batch = PacketBatch::from_trace(policy.schema().clone(), packets).unwrap();
    let mut scratch = EngineScratch::default();
    let (mut cached, mut uncached) = (Vec::new(), Vec::new());

    let choice = live.engine_choice();
    assert!(choice.cached, "{tag}: cache route must be installed");
    let (image, walk) = live.load_pair();
    choice
        .uncached()
        .classify_into(
            &image,
            Some(&walk),
            None,
            &batch,
            &mut scratch,
            &mut uncached,
        )
        .unwrap();
    for pass in ["cold", "warm"] {
        live.classify_auto_into(&batch, &mut scratch, &mut cached)
            .unwrap();
        assert_eq!(
            cached, uncached,
            "{tag}: cached route diverges from uncached ({pass} pass)"
        );
        for (p, d) in packets.iter().zip(&cached) {
            assert_eq!(
                *d,
                fdd.evaluate(p),
                "{tag}: cached route diverges from FDD walk at {p} ({pass} pass)"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: a cache-fronted LiveMatcher serves exactly as the
    /// uncached engines and the FDD walk through interleaved edit
    /// batches — the exact invalidation after each batch leaves no stale
    /// survivor, including inside the edited regions.
    #[test]
    fn cached_live_matcher_agrees_through_edits(
        seed in 0u64..10_000,
        rules in 2usize..24,
        capacity_shift in 4u32..10,
        edit_seed in 0u64..1_000,
    ) {
        let fw = Synthesizer::new(seed).firewall(rules);
        let live = LiveMatcher::new(fw.clone()).unwrap();
        // Small capacities force set conflicts and LRU eviction mid-test.
        live.enable_cache(1usize << capacity_shift).unwrap();

        assert_cached_serving_agrees(&live, &probes(&fw, 64, seed ^ 0xace), "fresh");

        for round in 0..3u64 {
            let policy = live.policy();
            let edits = edits_for(&policy, 1 + (round as usize % 3), edit_seed ^ round);
            let report = live.apply_edits(&edits).unwrap();
            if report.swapped {
                prop_assert!(
                    report.cache.is_some(),
                    "a swapped edit with a cache enabled must report its invalidation"
                );
            }
            // Post-edit probes are drawn against the NEW policy, so the
            // biased share exercises exactly the regions that changed.
            assert_cached_serving_agrees(
                &live,
                &probes(&live.policy(), 48, edit_seed ^ (round << 16)),
                &format!("after round {round}"),
            );
        }
        // The lifetime counters saw real traffic through the front end.
        let stats = live.disable_cache().expect("cache was enabled");
        prop_assert!(stats.hits + stats.misses > 0);
    }

    /// Property: a cache-enabled registry serves every tenant of a
    /// perturbed fleet exactly as that tenant's own first-match scan and
    /// FDD walk, through interleaved per-tenant edit batches — a tenant's
    /// invalidation must never corrupt (or be confused by) entries a
    /// dedup sibling left in the same shard cache.
    #[test]
    fn cached_registry_agrees_through_edits(
        seed in 0u64..10_000,
        rules in 4usize..20,
        tenants in 2usize..5,
        edit_seed in 0u64..1_000,
    ) {
        let base = Synthesizer::new(seed).firewall(rules);
        let fleet = perturb_fleet(&base, tenants, 10, seed);
        let registry = PolicyRegistry::new();
        for (i, fw) in fleet.iter().enumerate() {
            registry.add_tenant(TenantId(i as u64), fw.clone()).unwrap();
        }
        registry.enable_cache(1 << 12).unwrap();

        let mut out = Vec::new();
        let mut check_all = |tag: &str, probe_seed: u64| {
            for i in 0..tenants {
                let tenant = TenantId(i as u64);
                let policy = registry.policy(tenant).unwrap();
                let fdd = Fdd::from_firewall_fast(&policy).unwrap();
                let packets = probes(&policy, 40, probe_seed ^ (i as u64) << 32);
                let batch =
                    PacketBatch::from_trace(policy.schema().clone(), &packets).unwrap();
                // Twice: the second pass serves warm out of the shard
                // cache (shared with dedup siblings) and must not drift.
                for pass in ["cold", "warm"] {
                    registry.classify_batch_into(tenant, &batch, &mut out).unwrap();
                    for (p, d) in packets.iter().zip(&out) {
                        assert_eq!(
                            *d,
                            fdd.evaluate(p),
                            "{tag}: tenant {i} cached serving diverges at {p} ({pass})"
                        );
                        assert_eq!(
                            *d,
                            policy.decision_for(p).unwrap(),
                            "{tag}: tenant {i} diverges from first-match at {p} ({pass})"
                        );
                    }
                }
            }
        };
        check_all("fresh fleet", seed ^ 0xcafe);

        for round in 0..2u64 {
            for i in 0..tenants {
                let tenant = TenantId(i as u64);
                let edits = edits_for(
                    &registry.policy(tenant).unwrap(),
                    1 + (round as usize + i) % 2,
                    edit_seed ^ (round << 8) ^ i as u64,
                );
                registry.apply_edits(tenant, &edits).unwrap();
            }
            check_all(&format!("after round {round}"), edit_seed ^ round);
        }
        let stats = registry.cache_stats().expect("cache enabled");
        prop_assert!(stats.hits > 0, "warm passes must actually hit");
    }
}

/// The torn interleaving the generation guard exists for: a serving
/// thread probes (miss), computes a decision against the pre-edit image,
/// an edit's invalidation runs in between, and only then does the insert
/// arrive. The insert must be rejected — under both invalidation arms —
/// or the cache would serve the pre-edit decision forever.
#[test]
fn torn_insert_between_probe_and_invalidation_is_rejected() {
    let schema = Schema::new(vec![
        FieldDef::new("a", 3).unwrap(),
        FieldDef::new("b", 3).unwrap(),
    ])
    .unwrap();
    let fw = Firewall::parse(schema.clone(), "a=0-3 -> accept\n* -> discard\n").unwrap();
    let edit = diverse_firewall::core::Edit::Replace {
        index: 0,
        rule: fw.rules()[0].with_decision(Decision::Discard),
    };
    let (_, impact) = ChangeImpact::of_edits(&fw, std::slice::from_ref(&edit)).unwrap();

    for plan in [InvalidationPlan::Exact, InvalidationPlan::EpochBump] {
        let mut cache = DecisionCache::new(schema.clone(), 64).unwrap();
        let p = [1u64, 2u64]; // inside the edited region: accept -> discard
        assert_eq!(cache.probe(UNTAGGED, &p), None, "starts cold");
        let generation = cache.generation();
        // ... the edit lands and invalidates before our insert arrives ...
        cache.invalidate_with(&impact, plan);
        // ... so the pre-edit decision must NOT be accepted.
        assert!(
            !cache.insert(UNTAGGED, generation, &p, Decision::Accept),
            "stale insert must be rejected under {plan:?}"
        );
        assert_eq!(
            cache.probe(UNTAGGED, &p),
            None,
            "the torn decision must not be resident under {plan:?}"
        );
        // A fresh computation against the post-edit image lands fine.
        assert!(cache.insert(UNTAGGED, cache.generation(), &p, Decision::Discard));
        assert_eq!(cache.probe(UNTAGGED, &p), Some(Decision::Discard));
    }
}

/// Exhaustive invalidation-soundness sweep on a tiny 2-field/3-bit schema
/// (64 packets): fill a cache with every packet's pre-edit decision,
/// apply an edit, force EACH invalidation arm, and demand that
/// (a) every packet whose decision changed now misses, and (b) every
/// surviving hit equals the post-edit decision — at capacities 16, 64 and
/// 256, so the sweep covers heavy set-conflict eviction, exact fit, and
/// slack.
#[test]
fn exhaustive_invalidation_soundness_on_tiny_schema() {
    let schema = Schema::new(vec![
        FieldDef::new("a", 3).unwrap(),
        FieldDef::new("b", 3).unwrap(),
    ])
    .unwrap();
    let all: Vec<Packet> = (0..8u64)
        .flat_map(|a| (0..8u64).map(move |b| Packet::new(vec![a, b])))
        .collect();
    let decisions = [Decision::Accept, Decision::Discard, Decision::AcceptLog];

    for k in 0..8u64 {
        let (a_lo, a_hi) = (k % 5, (k % 5) + 3);
        let d1 = decisions[(k % 3) as usize];
        let d2 = decisions[((k + 1) % 3) as usize];
        let text = format!("a={a_lo}-{a_hi}, b=1-6 -> {d1}\n* -> {d2}\n");
        let fw = Firewall::parse(schema.clone(), &text).unwrap();
        // The edit flips the first rule's decision: every packet in its
        // region changes, every packet outside keeps its decision.
        let edit = diverse_firewall::core::Edit::Replace {
            index: 0,
            rule: fw.rules()[0].with_decision(d1.inverted()),
        };
        let (after, impact) = ChangeImpact::of_edits(&fw, std::slice::from_ref(&edit)).unwrap();

        for capacity in [16usize, 64, 256] {
            for plan in [InvalidationPlan::Exact, InvalidationPlan::EpochBump] {
                let mut cache = DecisionCache::new(schema.clone(), capacity).unwrap();
                let generation = cache.generation();
                for p in &all {
                    let d = fw.decision_for(p).unwrap();
                    assert!(cache.insert(UNTAGGED, generation, p.values(), d));
                }
                let filled = cache.len();
                assert!(filled > 0);

                let report = cache.invalidate_with(&impact, plan);
                assert_eq!(report.plan, plan);
                assert_eq!(report.resident, filled);
                if plan == InvalidationPlan::EpochBump {
                    assert_eq!(report.invalidated as usize, filled, "bump drops all");
                    assert!(cache.is_empty(), "bump leaves nothing resident");
                }

                let mut survivors = 0u64;
                for p in &all {
                    let was = fw.decision_for(p).unwrap();
                    let now = after.decision_for(p).unwrap();
                    match cache.probe(UNTAGGED, p.values()) {
                        Some(hit) => {
                            survivors += 1;
                            assert_eq!(
                                was, now,
                                "policy {k} cap {capacity} {plan:?}: a changed packet \
                                 survived invalidation at {p}"
                            );
                            assert_eq!(
                                hit, now,
                                "policy {k} cap {capacity} {plan:?}: stale decision at {p}"
                            );
                        }
                        None => {
                            // Fine either way: dropped by the invalidation,
                            // evicted by a set conflict, or never resident.
                        }
                    }
                }
                match plan {
                    InvalidationPlan::EpochBump => assert_eq!(survivors, 0),
                    InvalidationPlan::Exact => {
                        // At full or slack capacity nothing outside the
                        // edited region conflicts away: the exact arm must
                        // keep every unaffected entry warm.
                        if capacity >= all.len() {
                            let unchanged = all
                                .iter()
                                .filter(|p| {
                                    fw.decision_for(p).unwrap() == after.decision_for(p).unwrap()
                                })
                                .count() as u64;
                            assert_eq!(
                                survivors, unchanged,
                                "policy {k} cap {capacity}: exact arm must keep every \
                                 unaffected entry"
                            );
                        }
                    }
                }
            }
        }
    }
}
