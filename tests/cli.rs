//! Integration tests for the `fwdiff` command-line tool, driven through the
//! real binary.

use std::process::Command;

fn fwdiff() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fwdiff"))
}

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn diff_mode_reports_discrepancies_and_exits_nonzero() {
    let out = fwdiff()
        .args([
            repo_path("policies/dmz_v1.fw"),
            repo_path("policies/dmz_v2.fw"),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "differing policies exit 1");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("discrepancy region(s)"), "got: {stdout}");
    assert!(
        stdout.contains("dport=5554"),
        "worm rule impact missing: {stdout}"
    );
    assert!(stdout.contains("10.0.0.53"), "DNS change missing: {stdout}");
}

#[test]
fn identical_policies_exit_zero() {
    let p = repo_path("policies/dmz_v1.fw");
    let out = fwdiff().args([&p, &p]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("semantically equivalent"));
}

#[test]
fn lint_mode_flags_anomalies() {
    let out = fwdiff()
        .args(["--lint".to_owned(), repo_path("policies/messy.fw")])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("shadowing"), "got: {stdout}");
    assert!(stdout.contains("correlation"), "got: {stdout}");
    assert!(stdout.contains("redundant"), "got: {stdout}");
}

#[test]
fn bad_usage_exits_2() {
    let out = fwdiff().output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = fwdiff()
        .args(["--frobnicate"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = fwdiff()
        .args(["--schema", "nope", "x", "y"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn missing_file_reports_error() {
    let out = fwdiff()
        .args(["/nonexistent/a.fw", "/nonexistent/b.fw"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("fwdiff:"));
}

#[test]
fn paper_schema_flag_works() {
    // Write two tiny paper-schema policies to a temp dir and diff them.
    let dir = std::env::temp_dir().join("fwdiff-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.fw");
    let b = dir.join("b.fw");
    std::fs::write(&a, "iface=0, dport=25 -> accept\n* -> discard\n").unwrap();
    std::fs::write(&b, "* -> discard\n").unwrap();
    let out = fwdiff()
        .args([
            "--schema".to_owned(),
            "paper".to_owned(),
            a.display().to_string(),
            b.display().to_string(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("dport=25"), "got: {stdout}");
}

#[test]
fn iptables_format_diff() {
    let out = fwdiff()
        .args([
            "--format".to_owned(),
            "iptables".to_owned(),
            repo_path("policies/router_v1.rules"),
            repo_path("policies/router_v2.rules"),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("dport=53"),
        "DNS narrowing missing: {stdout}"
    );
    assert!(
        stdout.contains("dport=25"),
        "mail narrowing missing: {stdout}"
    );
}
