//! Full-workflow integration tests on realistic workloads: change-impact
//! audits, the simulated §8.1 effectiveness experiment, and the complete
//! three-phase diverse-design flow on generated policies.

use diverse_firewall::core::{ChangeImpact, Edit};
use diverse_firewall::diverse::{finalize, Comparison, Resolution};
use diverse_firewall::gen::generate_rules;
use diverse_firewall::model::{Decision, Rule};
use diverse_firewall::synth::{
    documented_firewall, inject_errors, perturb, university_average, PacketTrace, Synthesizer,
};

#[test]
fn change_impact_is_exact_on_average_policy() {
    let policy = university_average();
    let (after, impact) = ChangeImpact::of_edits(
        &policy,
        &[Edit::Insert {
            index: 0,
            rule: Rule::catch_all(policy.schema(), Decision::Discard),
        }],
    )
    .unwrap();
    // Blanket discard at the top: everything previously accepted flips.
    assert!(!impact.is_noop());
    let trace = PacketTrace::random(policy.schema().clone(), 10_000, 1);
    for p in trace.packets() {
        assert_eq!(
            impact.affects(p),
            policy.decision_for(p) != after.decision_for(p),
            "at {p}"
        );
    }
}

#[test]
fn fig12_style_perturbation_impacts_are_sound() {
    let base = university_average();
    for x in [5u32, 25, 50] {
        let derived = perturb(&base, x, u64::from(x) + 7);
        let impact = ChangeImpact::between(&base, &derived).unwrap();
        let trace = PacketTrace::random(base.schema().clone(), 8_000, u64::from(x));
        for p in trace.packets() {
            assert_eq!(
                impact.affects(p),
                base.decision_for(p) != derived.decision_for(p),
                "x={x} at {p}"
            );
        }
    }
}

#[test]
fn effectiveness_experiment_in_miniature() {
    let redesign = documented_firewall();
    let outcome = inject_errors(&redesign, 20, 4, 99);
    let impact = ChangeImpact::between(&outcome.flawed, &redesign).unwrap();
    // With inverted-decision shadows at the top, differences must exist.
    assert!(!impact.is_noop());
    let trace = PacketTrace::random(redesign.schema().clone(), 20_000, 5);
    for p in trace.packets() {
        assert_eq!(
            impact.affects(p),
            outcome.flawed.decision_for(p) != redesign.decision_for(p),
            "at {p}"
        );
    }
}

#[test]
fn three_phase_workflow_on_generated_teams() {
    // Three "teams": one ground truth and two perturbed readings of it.
    let spec = Synthesizer::new(123).firewall(20);
    let team1 = spec.clone();
    let team2 = perturb(&spec, 20, 1);
    let team3 = perturb(&spec, 20, 2);
    let cmp = Comparison::of(vec![team1.clone(), team2, team3]).unwrap();

    // Majority resolution: with two derivatives perturbed independently,
    // the ground truth usually wins each vote.
    let res = Resolution::by_majority(&cmp);
    let agreed = finalize(&cmp, &res).unwrap();

    // The agreed firewall implements every resolution entry.
    for e in res.entries() {
        let w = e.discrepancy().witness();
        assert_eq!(agreed.decision_for(&w), Some(e.decision()));
    }
    // And where all teams agreed, the agreed firewall follows them.
    let trace = PacketTrace::random(spec.schema().clone(), 5_000, 11);
    for p in trace.packets() {
        let decs = cmp.decisions_for(p);
        if decs.windows(2).all(|w| w[0] == w[1]) {
            assert_eq!(agreed.decision_for(p), decs[0], "at {p}");
        }
    }
}

#[test]
fn regenerated_policies_stay_equivalent_on_real_sizes() {
    // FDD → rules → FDD round trip on the 42-rule policy.
    let policy = university_average();
    let fdd = fw_core::Fdd::from_firewall_fast(&policy).unwrap();
    let regenerated = generate_rules(&fdd).unwrap();
    assert!(fw_core::equivalent(&policy, &regenerated).unwrap());
    // The regenerated policy is compact: no redundancy left.
    assert!(diverse_firewall::gen::analyze_redundancy(&regenerated)
        .redundant
        .is_empty());
}

#[test]
fn trace_round_trip_across_crates() {
    let policy = university_average();
    let trace = PacketTrace::random(policy.schema().clone(), 1_000, 3);
    let bytes = trace.encode();
    let back = PacketTrace::decode(policy.schema().clone(), bytes).unwrap();
    assert_eq!(trace, back);
    let fdd = fw_core::Fdd::from_firewall_fast(&policy).unwrap();
    for p in back.packets() {
        assert_eq!(policy.decision_for(p), fdd.decision_for(p));
    }
}

#[test]
fn design_session_walks_the_paper_example() {
    use diverse_firewall::diverse::DesignSession;
    use diverse_firewall::model::paper;
    let resolved = DesignSession::new()
        .team("Team A", paper::team_a())
        .team("Team B", paper::team_b())
        .compare()
        .unwrap()
        .resolve_by_majority();
    let scores = resolved.scores();
    assert_eq!(scores.len(), 2);
    assert_eq!(scores[0].correct + scores[0].incorrect, 3);
    let agreed = resolved.finalize().unwrap();
    assert!(fw_core::equivalent(&agreed, &paper::team_b()).unwrap());
}

#[test]
fn evolution_history_is_fully_auditable() {
    use diverse_firewall::synth::{evolve, EvolutionProfile};
    let base = Synthesizer::new(99).firewall(12);
    let history = evolve(&base, 6, &EvolutionProfile::default(), 3);
    let mut prev = base.clone();
    for step in &history {
        let impact = ChangeImpact::between(&prev, &step.after).unwrap();
        // Sampling oracle per step.
        let trace = PacketTrace::biased(&prev, 2_000, 0.3, 11);
        for p in trace.packets() {
            assert_eq!(
                impact.affects(p),
                prev.decision_for(p) != step.after.decision_for(p),
                "at {p}"
            );
        }
        prev = step.after.clone();
    }
}

#[test]
fn iptables_round_trip_through_the_comparison_pipeline() {
    use diverse_firewall::model::iptables;
    let v1 = std::fs::read_to_string(format!(
        "{}/policies/router_v1.rules",
        env!("CARGO_MANIFEST_DIR")
    ))
    .unwrap();
    let v2 = std::fs::read_to_string(format!(
        "{}/policies/router_v2.rules",
        env!("CARGO_MANIFEST_DIR")
    ))
    .unwrap();
    let a = iptables::parse(&v1).unwrap();
    let b = iptables::parse(&v2).unwrap();
    let ds = fw_core::compare_firewalls(&a, &b).unwrap();
    assert_eq!(ds.len(), 2, "DNS narrowing + mail source narrowing");
    // Export → reparse → identical semantics.
    let again = iptables::parse(&iptables::export(&a, "INPUT").unwrap()).unwrap();
    assert!(fw_core::equivalent(&a, &again).unwrap());
}
