//! Three-way execution oracle for the compiled classification runtime:
//! on every packet of every trace, the O(n·d) linear first-match scan
//! ([`Firewall::decision_for`]), the plain FDD walk ([`Fdd::evaluate`])
//! and the flat compiled matcher ([`CompiledFdd::classify`]) must return
//! the same decision — on random policies, biased traces, wire-format
//! round trips, and an exhaustive all-packets sweep of a tiny schema.

use diverse_firewall::core::Fdd;
use diverse_firewall::exec::{CompiledFdd, PacketBatch};
use diverse_firewall::model::{Decision, FieldDef, Firewall, Packet, Schema};
use diverse_firewall::synth::{PacketTrace, Synthesizer};
use proptest::prelude::*;

/// Assert all engines agree on every packet of `trace`, including the
/// decoded wire image and both batch entry points.
fn assert_three_way(fw: &Firewall, trace: &PacketTrace, tag: &str) {
    let fdd = Fdd::from_firewall_fast(fw).unwrap();
    let compiled = CompiledFdd::from_firewall(fw).unwrap();
    let reloaded = CompiledFdd::decode(fw.schema().clone(), compiled.encode()).unwrap();
    let batch = PacketBatch::from_packets(fw.schema().clone(), trace.packets()).unwrap();

    let mut batched = Vec::new();
    compiled.classify_batch_into(trace.packets(), &mut batched);
    let columns = compiled.classify_columns(&batch).unwrap();
    for (i, p) in trace.packets().iter().enumerate() {
        let linear = fw.decision_for(p).expect("comprehensive policy");
        let walked = fdd.evaluate(p);
        let classified = compiled.classify(p);
        assert_eq!(linear, walked, "{tag}: FDD walk diverges at {p}");
        assert_eq!(linear, classified, "{tag}: compiled diverges at {p}");
        assert_eq!(linear, batched[i], "{tag}: batch diverges at {p}");
        assert_eq!(linear, columns[i], "{tag}: column batch diverges at {p}");
        assert_eq!(
            linear,
            reloaded.classify(p),
            "{tag}: decoded wire image diverges at {p}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: on random synthesized policies, all execution engines
    /// agree on both uniformly random and rule-region-biased traces.
    #[test]
    fn engines_agree_on_random_policies(
        seed in 0u64..10_000,
        rules in 1usize..30,
        trace_seed in 0u64..1_000,
    ) {
        let fw = Synthesizer::new(seed).firewall(rules);
        let random = PacketTrace::random(fw.schema().clone(), 400, trace_seed);
        assert_three_way(&fw, &random, "random trace");
        let biased = PacketTrace::biased(&fw, 400, 0.3, trace_seed + 1);
        assert_three_way(&fw, &biased, "biased trace");
    }
}

/// Exhaustive oracle: on a tiny 2-field schema (3 bits each) every one of
/// the 64 packets is enumerable, so the compiled matcher is checked
/// cell-by-cell against first-match evaluation for a deterministic family
/// of policies — the same sweep style as `pipelines_agree.rs`.
#[test]
fn engines_match_exhaustive_oracle_on_tiny_schema() {
    let schema = Schema::new(vec![
        FieldDef::new("a", 3).unwrap(),
        FieldDef::new("b", 3).unwrap(),
    ])
    .unwrap();
    let decisions = [Decision::Accept, Decision::Discard, Decision::AcceptLog];

    for k in 0..12u64 {
        let (a_lo, a_hi) = (k % 5, (k % 5) + 3);
        let (b_lo, b_hi) = ((k * 3) % 6, ((k * 3) % 6) + 1);
        let d1 = decisions[(k % 3) as usize];
        let d2 = decisions[((k + 1) % 3) as usize];
        let d3 = decisions[((k + 2) % 3) as usize];
        let text =
            format!("a={a_lo}-{a_hi}, b={b_lo}-{b_hi} -> {d1}\nb={b_lo} -> {d2}\n* -> {d3}\n");
        let fw = Firewall::parse(schema.clone(), &text).unwrap();

        let fdd = Fdd::from_firewall_fast(&fw).unwrap();
        let compiled = CompiledFdd::from_firewall(&fw).unwrap();
        let reloaded = CompiledFdd::decode(schema.clone(), compiled.encode()).unwrap();
        for a in 0..8u64 {
            for b in 0..8u64 {
                let p = Packet::new(vec![a, b]);
                let linear = fw.decision_for(&p).unwrap();
                assert_eq!(linear, fdd.evaluate(&p), "policy {k}, walk at {p}");
                assert_eq!(linear, compiled.classify(&p), "policy {k}, compiled at {p}");
                assert_eq!(linear, reloaded.classify(&p), "policy {k}, decoded at {p}");
            }
        }
    }
}

/// The paper's running example compiles and serves the same decisions as
/// the rule list it came from, end to end through the session API.
#[test]
fn paper_example_compiles_and_serves() {
    use diverse_firewall::diverse::{Comparison, Resolution};
    use diverse_firewall::model::paper;

    let cmp = Comparison::of(vec![paper::team_a(), paper::team_b()]).unwrap();
    let res = Resolution::by_majority(&cmp);
    let agreed = diverse_firewall::diverse::finalize(&cmp, &res).unwrap();
    let compiled = diverse_firewall::diverse::compile_final(&cmp, &res).unwrap();
    let trace = PacketTrace::biased(&agreed, 2_000, 0.25, 7);
    for p in trace.packets() {
        assert_eq!(agreed.decision_for(p).unwrap(), compiled.classify(p));
    }
}
