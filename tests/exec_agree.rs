//! Four-way execution oracle for the compiled classification runtime:
//! on every packet of every trace, the O(n·d) linear first-match scan
//! ([`Firewall::decision_for`]), the plain FDD walk ([`Fdd::evaluate`]),
//! the flat compiled matcher ([`CompiledFdd::classify`], row- and
//! column-major) and the level-synchronous lane kernel
//! ([`CompiledFdd::classify_lanes`], across lane widths and ragged batch
//! lengths) must return the same decision — on random policies, biased
//! traces, wire-format round trips (including the v2 level metadata), and
//! an exhaustive all-packets sweep of a tiny schema.
//!
//! The multi-core additions ride the same oracle: the parallel lane
//! pipeline must be byte-identical to the serial kernel at every thread
//! count (including counts that do not divide the batch), and the auto
//! route must serve the same decisions under every [`EngineChoice`] a
//! calibrator could install.

use diverse_firewall::core::Fdd;
use diverse_firewall::exec::{
    CompiledFdd, EngineChoice, EngineKind, EngineScratch, PacketBatch, ParScratch,
    DEFAULT_LANE_WIDTH,
};
use diverse_firewall::model::{Decision, FieldDef, Firewall, Packet, Schema};
use diverse_firewall::synth::{PacketTrace, Synthesizer};
use proptest::prelude::*;

/// Lane widths that stress the kernel's chunking: degenerate (1), prime
/// and misaligned (3, 33), the tuned default, and one chunk per batch.
fn lane_widths(batch_len: usize) -> [usize; 5] {
    [
        1,
        3,
        DEFAULT_LANE_WIDTH,
        DEFAULT_LANE_WIDTH + 1,
        batch_len.max(1),
    ]
}

/// Assert all engines agree on every packet of `trace`, including the
/// decoded wire image, both batch entry points, and the lane kernel at
/// every width of [`lane_widths`] (ragged final chunks included whenever
/// the trace length is not a width multiple).
fn assert_four_way(fw: &Firewall, trace: &PacketTrace, tag: &str) {
    let fdd = Fdd::from_firewall_fast(fw).unwrap();
    let compiled = CompiledFdd::from_firewall(fw).unwrap();
    let reloaded = CompiledFdd::decode(fw.schema().clone(), compiled.encode()).unwrap();
    let batch = PacketBatch::from_trace(fw.schema().clone(), trace.packets()).unwrap();

    let mut batched = Vec::new();
    compiled.classify_batch_into(trace.packets(), &mut batched);
    let columns = compiled.classify_columns(&batch).unwrap();
    let lanes = compiled.classify_lanes(&batch, DEFAULT_LANE_WIDTH).unwrap();
    for (i, p) in trace.packets().iter().enumerate() {
        let linear = fw.decision_for(p).expect("comprehensive policy");
        let walked = fdd.evaluate(p);
        let classified = compiled.classify(p);
        assert_eq!(linear, walked, "{tag}: FDD walk diverges at {p}");
        assert_eq!(linear, classified, "{tag}: compiled diverges at {p}");
        assert_eq!(linear, batched[i], "{tag}: batch diverges at {p}");
        assert_eq!(linear, columns[i], "{tag}: column batch diverges at {p}");
        assert_eq!(linear, lanes[i], "{tag}: lane kernel diverges at {p}");
        assert_eq!(
            linear,
            reloaded.classify(p),
            "{tag}: decoded wire image diverges at {p}"
        );
    }
    for width in lane_widths(batch.len()) {
        let at_width = compiled.classify_lanes(&batch, width).unwrap();
        assert_eq!(
            at_width, lanes,
            "{tag}: lane kernel diverges at width {width}"
        );
        let decoded_lanes = reloaded.classify_lanes(&batch, width).unwrap();
        assert_eq!(
            decoded_lanes, lanes,
            "{tag}: decoded lane kernel diverges at width {width}"
        );
    }

    // Parallel ≡ serial: the sharded pipeline must reproduce the serial
    // kernel bit for bit at every thread count — 401-packet traces are
    // never a multiple of the lane width or the thread count, so ragged
    // final spans and idle workers are both exercised.
    let mut par_scratch = ParScratch::default();
    let mut par_out = Vec::new();
    for threads in [1usize, 2, 3, 4, 8] {
        compiled
            .classify_lanes_par_into(
                &batch,
                DEFAULT_LANE_WIDTH,
                threads,
                &mut par_scratch,
                &mut par_out,
            )
            .unwrap();
        assert_eq!(
            par_out, lanes,
            "{tag}: parallel lanes diverge at {threads} thread(s)"
        );
    }
    // The auto route with no stored calibration serves the default choice
    // — same decisions, including through a decoded image whose lane
    // mirror is built lazily on this very call.
    assert_eq!(
        compiled.classify_auto(&batch).unwrap(),
        lanes,
        "{tag}: auto"
    );
    assert_eq!(
        reloaded.classify_auto(&batch).unwrap(),
        lanes,
        "{tag}: decoded auto"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: on random synthesized policies, all execution engines
    /// agree on both uniformly random and rule-region-biased traces.
    #[test]
    fn engines_agree_on_random_policies(
        seed in 0u64..10_000,
        rules in 1usize..30,
        trace_seed in 0u64..1_000,
    ) {
        let fw = Synthesizer::new(seed).firewall(rules);
        // 401 packets: prime-ish, so every lane width in the sweep leaves a
        // ragged final chunk.
        let random = PacketTrace::random(fw.schema().clone(), 401, trace_seed);
        assert_four_way(&fw, &random, "random trace");
        let biased = PacketTrace::biased(&fw, 401, 0.3, trace_seed + 1);
        assert_four_way(&fw, &biased, "biased trace");
    }
}

/// Exhaustive oracle: on a tiny 2-field schema (3 bits each) every one of
/// the 64 packets is enumerable, so the compiled matcher is checked
/// cell-by-cell against first-match evaluation for a deterministic family
/// of policies — the same sweep style as `pipelines_agree.rs`.
#[test]
fn engines_match_exhaustive_oracle_on_tiny_schema() {
    let schema = Schema::new(vec![
        FieldDef::new("a", 3).unwrap(),
        FieldDef::new("b", 3).unwrap(),
    ])
    .unwrap();
    let decisions = [Decision::Accept, Decision::Discard, Decision::AcceptLog];

    for k in 0..12u64 {
        let (a_lo, a_hi) = (k % 5, (k % 5) + 3);
        let (b_lo, b_hi) = ((k * 3) % 6, ((k * 3) % 6) + 1);
        let d1 = decisions[(k % 3) as usize];
        let d2 = decisions[((k + 1) % 3) as usize];
        let d3 = decisions[((k + 2) % 3) as usize];
        let text =
            format!("a={a_lo}-{a_hi}, b={b_lo}-{b_hi} -> {d1}\nb={b_lo} -> {d2}\n* -> {d3}\n");
        let fw = Firewall::parse(schema.clone(), &text).unwrap();

        let fdd = Fdd::from_firewall_fast(&fw).unwrap();
        let compiled = CompiledFdd::from_firewall(&fw).unwrap();
        let reloaded = CompiledFdd::decode(schema.clone(), compiled.encode()).unwrap();
        let all: Vec<Packet> = (0..8u64)
            .flat_map(|a| (0..8u64).map(move |b| Packet::new(vec![a, b])))
            .collect();
        let mut linears = Vec::new();
        for p in &all {
            let linear = fw.decision_for(p).unwrap();
            assert_eq!(linear, fdd.evaluate(p), "policy {k}, walk at {p}");
            assert_eq!(linear, compiled.classify(p), "policy {k}, compiled at {p}");
            assert_eq!(linear, reloaded.classify(p), "policy {k}, decoded at {p}");
            linears.push(linear);
        }
        // The whole domain through the lane kernel, at every sweep width:
        // 64 packets is small enough that this is the exhaustive case.
        let batch = PacketBatch::from_trace(schema.clone(), &all).unwrap();
        for width in lane_widths(batch.len()) {
            let lanes = compiled.classify_lanes(&batch, width).unwrap();
            assert_eq!(lanes, linears, "policy {k}, lane kernel at width {width}");
        }

        // The whole domain through the auto route, under every engine
        // choice a calibrator could install: all four kinds, serial and
        // sharded, at two lane widths — 64 packets checked cell-by-cell
        // each time.
        let mut scratch = EngineScratch::default();
        let mut out = Vec::new();
        for kind in [
            EngineKind::Walk,
            EngineKind::Scalar,
            EngineKind::Columns,
            EngineKind::Lanes,
        ] {
            for threads in [1usize, 2, 4, 8] {
                for lane_width in [8usize, 32] {
                    let choice = EngineChoice {
                        kind,
                        lane_width,
                        threads,
                        cached: false,
                    };
                    choice
                        .classify_into(
                            &compiled,
                            Some(&fdd),
                            Some(&all),
                            &batch,
                            &mut scratch,
                            &mut out,
                        )
                        .unwrap();
                    assert_eq!(out, linears, "policy {k}: {choice} diverges");
                }
            }
        }
        // And the calibrated entry point end to end: race the engines on
        // the full domain, then serve through whatever won.
        let mut tuned = compiled.clone();
        let cal = tuned.calibrate(Some(&fdd), Some(&all), &batch, 2).unwrap();
        assert_eq!(tuned.stats().calibrated, Some(cal.choice));
        assert_eq!(
            tuned.classify_auto(&batch).unwrap(),
            linears,
            "policy {k}: calibrated auto ({}) diverges",
            cal.choice
        );
    }
}

/// The v2 wire format round-trips the per-node BFS level metadata exactly:
/// the decoded matcher is indistinguishable from the original (stats,
/// levels, lane-kernel mirror and all), and an image whose level byte is
/// tampered with is rejected by the decoder's fresh-BFS re-validation
/// rather than trusted.
#[test]
fn wire_round_trip_preserves_level_metadata_and_rejects_tampering() {
    let fw = Synthesizer::new(99).firewall(60);
    let compiled = CompiledFdd::from_firewall(&fw).unwrap();
    let image = compiled.encode();
    let reloaded = CompiledFdd::decode(fw.schema().clone(), image.clone()).unwrap();
    assert_eq!(
        compiled, reloaded,
        "decode must reproduce the matcher exactly"
    );
    let s = reloaded.stats();
    assert!(s.levels >= 2, "real policies span multiple BFS levels");
    assert!(s.levels <= s.max_depth + 1, "levels bounded by walk depth");

    // Bump the recorded level of the *last* node (guaranteed non-root, and
    // reachable — BFS emission order means every emitted node is reachable)
    // in its node word's high byte: header is 8 u32s + one u32 per field,
    // node i's packed word sits 3 u32s per node after that.
    let d = fw.schema().len();
    let mut bytes = image.to_vec();
    let word_at = |n: usize| 4 * (8 + d + 3 * n);
    let node_count = compiled.node_count();
    let off = word_at(node_count - 1) + 3; // little-endian high byte = level
    bytes[off] = bytes[off].wrapping_add(1);
    let err = CompiledFdd::decode(fw.schema().clone(), bytes.into());
    assert!(
        err.is_err(),
        "tampered level byte must fail the decoder's BFS re-validation"
    );
}

/// The paper's running example compiles and serves the same decisions as
/// the rule list it came from, end to end through the session API.
#[test]
fn paper_example_compiles_and_serves() {
    use diverse_firewall::diverse::{Comparison, Resolution};
    use diverse_firewall::model::paper;

    let cmp = Comparison::of(vec![paper::team_a(), paper::team_b()]).unwrap();
    let res = Resolution::by_majority(&cmp);
    let agreed = diverse_firewall::diverse::finalize(&cmp, &res).unwrap();
    let compiled = diverse_firewall::diverse::compile_final(&cmp, &res).unwrap();
    let trace = PacketTrace::biased(&agreed, 2_000, 0.25, 7);
    for p in trace.packets() {
        assert_eq!(agreed.decision_for(p).unwrap(), compiled.classify(p));
    }
}
