//! Equivalence oracle for multi-tenant fleet serving: for every tenant,
//! the shared [`PolicyRegistry`] must classify exactly as (a) a
//! standalone [`LiveMatcher`] built from the same policy and (b) the
//! plain FDD walk — the registry's cross-tenant structural sharing
//! (hash-consed arena, interned rules, deduplicated compiled pool) must
//! be invisible to semantics. Probed on random perturbed fleets, through
//! interleaved per-tenant edit batches (each tenant's registry epoch and
//! receipt checked against its standalone matcher's swap report), and
//! exhaustively on every packet of a tiny 2-field schema.

use diverse_firewall::core::{Edit, Fdd};
use diverse_firewall::exec::LiveMatcher;
use diverse_firewall::fleet::{PolicyRegistry, TenantId};
use diverse_firewall::model::{Decision, FieldDef, Firewall, Packet, Rule, Schema};
use diverse_firewall::synth::{evolve, perturb_fleet, EvolutionProfile, PacketTrace, Synthesizer};
use proptest::prelude::*;

/// Probe packets: random plus rule-region-biased, as in the other
/// agreement oracles.
fn probes(fw: &Firewall, n: usize, seed: u64) -> Vec<Packet> {
    let random = PacketTrace::random(fw.schema().clone(), n, seed);
    let biased = PacketTrace::biased(fw, n, 0.3, seed + 1);
    random
        .packets()
        .iter()
        .chain(biased.packets())
        .cloned()
        .collect()
}

fn edits_for(fw: &Firewall, k: usize, seed: u64) -> Vec<Edit> {
    evolve(fw, k, &EvolutionProfile::default(), seed)
        .into_iter()
        .map(|s| s.edit)
        .collect()
}

/// The three-way check for one tenant on one probe set.
fn assert_tenant_agrees(
    registry: &PolicyRegistry,
    tenant: TenantId,
    standalone: &LiveMatcher,
    packets: &[Packet],
    tag: &str,
) {
    let policy = standalone.policy();
    let fdd = Fdd::from_firewall_fast(&policy).unwrap();
    assert_eq!(
        registry.policy(tenant).unwrap().to_dsl(),
        policy.to_dsl(),
        "{tag}: registry reconstructs a different policy"
    );
    for p in packets {
        let shared = registry.classify(tenant, p).unwrap();
        assert_eq!(
            shared,
            standalone.classify(p),
            "{tag}: registry diverges from standalone LiveMatcher at {p}"
        );
        assert_eq!(
            shared,
            fdd.evaluate(p),
            "{tag}: registry diverges from FDD walk at {p}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: a registry hosting a random perturbed fleet serves every
    /// tenant exactly as that tenant's standalone matcher and FDD, and
    /// keeps doing so through interleaved per-tenant edit batches whose
    /// receipts must mirror the standalone swap reports.
    #[test]
    fn registry_equals_standalone_through_interleaved_edits(
        seed in 0u64..10_000,
        rules in 4usize..24,
        tenants in 2usize..6,
        edit_seed in 0u64..1_000,
    ) {
        let base = Synthesizer::new(seed).firewall(rules);
        let fleet = perturb_fleet(&base, tenants, 10, seed);
        let registry = PolicyRegistry::new();
        let mut standalone = Vec::new();
        for (i, fw) in fleet.iter().enumerate() {
            registry.add_tenant(TenantId(i as u64), fw.clone()).unwrap();
            standalone.push(LiveMatcher::new(fw.clone()).unwrap());
        }

        let packets = probes(&base, 48, seed ^ 0xfeed);
        for (i, m) in standalone.iter().enumerate() {
            assert_tenant_agrees(&registry, TenantId(i as u64), m, &packets, "fresh fleet");
        }

        // Interleave edit batches across tenants: each round edits every
        // tenant once (round-robin), checking receipts and then the full
        // three-way agreement for EVERY tenant — an edit to one tenant
        // must never disturb another's serving.
        for round in 0..2u64 {
            for (i, m) in standalone.iter().enumerate() {
                let tenant = TenantId(i as u64);
                let edits = edits_for(
                    &m.policy(),
                    1 + (round as usize + i) % 3,
                    edit_seed ^ (round << 8) ^ i as u64,
                );
                let report = m.apply_edits(&edits).unwrap();
                let receipt = registry.apply_edits(tenant, &edits).unwrap();
                prop_assert_eq!(
                    receipt.swapped, report.swapped,
                    "swap verdicts diverge on round {} tenant {}", round, i
                );
                prop_assert_eq!(
                    receipt.affected_packets, report.affected_packets,
                    "affected-packet counts diverge on round {} tenant {}", round, i
                );
                prop_assert_eq!(receipt.epoch, registry.epoch(tenant).unwrap());
            }
            let packets = probes(&base, 32, edit_seed ^ round);
            for (i, m) in standalone.iter().enumerate() {
                assert_tenant_agrees(
                    &registry,
                    TenantId(i as u64),
                    m,
                    &packets,
                    &format!("after round {round}"),
                );
            }
        }
    }

    /// Property: batch classification through the shared pool equals
    /// scalar classification for every tenant of a perturbed fleet.
    #[test]
    fn batch_serving_equals_scalar(
        seed in 0u64..10_000,
        rules in 4usize..20,
        tenants in 2usize..5,
    ) {
        let base = Synthesizer::new(seed).firewall(rules);
        let fleet = perturb_fleet(&base, tenants, 15, seed);
        let registry = PolicyRegistry::new();
        for (i, fw) in fleet.iter().enumerate() {
            registry.add_tenant(TenantId(i as u64), fw.clone()).unwrap();
        }
        let trace = PacketTrace::random(base.schema().clone(), 96, seed ^ 0xbeef);
        let batch = diverse_firewall::exec::PacketBatch::from_trace(
            base.schema().clone(),
            trace.packets(),
        )
        .unwrap();
        for i in 0..tenants {
            let tenant = TenantId(i as u64);
            let batched = registry.classify_batch(tenant, &batch).unwrap();
            prop_assert_eq!(batched.len(), trace.len());
            for (p, d) in trace.packets().iter().zip(&batched) {
                prop_assert_eq!(*d, registry.classify(tenant, p).unwrap());
            }
        }
    }
}

/// Exhaustive sweep on a tiny 2-field/3-bit schema (64 packets): every
/// packet, every tenant, before and after an edit forks one tenant away
/// from its dedup partner.
#[test]
fn exhaustive_small_schema_sweep() {
    let schema = Schema::new(vec![
        FieldDef::new("a", 3).unwrap(),
        FieldDef::new("b", 3).unwrap(),
    ])
    .unwrap();
    let all_packets: Vec<Packet> = (0..8u64)
        .flat_map(|a| (0..8u64).map(move |b| Packet::new(vec![a, b])))
        .collect();

    // Three hand-built policies over the tiny schema; p0 == p1 textually
    // so the registry dedupes them onto one image.
    let parse = |text: &str| Firewall::parse(schema.clone(), text).unwrap();
    let p0 = parse("a=0-3 -> accept\n* -> discard\n");
    let p1 = parse("a=0-3 -> accept\n* -> discard\n");
    let p2 = parse("b=2-5 -> discard\na=1 -> discard\n* -> accept\n");

    let registry = PolicyRegistry::new();
    registry.add_tenant(TenantId(0), p0.clone()).unwrap();
    assert!(registry.add_tenant(TenantId(1), p1.clone()).unwrap());
    registry.add_tenant(TenantId(2), p2.clone()).unwrap();

    let matchers = [
        LiveMatcher::new(p0).unwrap(),
        LiveMatcher::new(p1).unwrap(),
        LiveMatcher::new(p2).unwrap(),
    ];
    for (i, m) in matchers.iter().enumerate() {
        assert_tenant_agrees(&registry, TenantId(i as u64), m, &all_packets, "exhaustive");
    }

    // Fork tenant 1 off the shared image: flip the catch-all to accept-log.
    let fork = Edit::Replace {
        index: 1,
        rule: Rule::catch_all(&schema, Decision::AcceptLog),
    };
    let report = matchers[1]
        .apply_edits(std::slice::from_ref(&fork))
        .unwrap();
    let receipt = registry
        .apply_edits(TenantId(1), std::slice::from_ref(&fork))
        .unwrap();
    assert!(receipt.swapped);
    assert_eq!(receipt.affected_packets, report.affected_packets);
    assert!(!receipt.merged);
    assert_eq!(registry.stats().distinct_policies, 3);

    // Exhaustive again: tenant 0 must still serve the original policy,
    // tenants 1 and 2 their own.
    for (i, m) in matchers.iter().enumerate() {
        assert_tenant_agrees(&registry, TenantId(i as u64), m, &all_packets, "post-fork");
    }

    // Edit tenant 1 straight back: content dedup must re-merge it onto
    // tenant 0's entry, and the exhaustive sweep must still hold.
    let back = Edit::Replace {
        index: 1,
        rule: Rule::catch_all(&schema, Decision::Discard),
    };
    matchers[1]
        .apply_edits(std::slice::from_ref(&back))
        .unwrap();
    let receipt = registry
        .apply_edits(TenantId(1), std::slice::from_ref(&back))
        .unwrap();
    assert!(
        receipt.merged,
        "identical content must dedupe onto the live entry"
    );
    assert_eq!(registry.stats().distinct_policies, 2);
    for (i, m) in matchers.iter().enumerate() {
        assert_tenant_agrees(&registry, TenantId(i as u64), m, &all_packets, "re-merged");
    }
}

/// Removing tenants and compacting must never change any surviving
/// tenant's decisions (regression for shared-arena compaction).
#[test]
fn surviving_tenants_are_stable_across_removal_and_maintenance() {
    let base = Synthesizer::new(77).firewall(30);
    let fleet = perturb_fleet(&base, 10, 10, 77);
    let registry = PolicyRegistry::new();
    for (i, fw) in fleet.iter().enumerate() {
        registry.add_tenant(TenantId(i as u64), fw.clone()).unwrap();
    }
    let packets = probes(&base, 64, 123);
    let before: Vec<Vec<Decision>> = (0..10)
        .map(|i| {
            packets
                .iter()
                .map(|p| registry.classify(TenantId(i), p).unwrap())
                .collect()
        })
        .collect();
    for i in (0..10).step_by(2) {
        registry.remove_tenant(TenantId(i)).unwrap();
    }
    registry.maintenance().unwrap();
    for i in (1..10).step_by(2) {
        let after: Vec<Decision> = packets
            .iter()
            .map(|p| registry.classify(TenantId(i), p).unwrap())
            .collect();
        assert_eq!(after, before[i as usize], "tenant {i} drifted");
    }
    // Survivors can still take edits after the sweep.
    let receipt = registry
        .apply_edits(TenantId(1), &[Edit::Remove { index: 0 }])
        .unwrap();
    let expected = registry.policy(TenantId(1)).unwrap();
    for p in &packets {
        assert_eq!(
            registry.classify(TenantId(1), p).unwrap(),
            expected.decision_for(p).unwrap()
        );
    }
    assert_eq!(receipt.epoch, u64::from(receipt.swapped));
}
