//! Equivalence oracle for incremental FDD maintenance: a
//! [`MaintainedFdd`] suffix chain patched edit by edit must serve exactly
//! the policy a from-scratch construction serves, and its short-circuit
//! diff must report exactly the impact the full §4+§5 comparison pipeline
//! reports. Probed on random synthesized policies with `fw_synth::evolve`
//! edit batches (including `Swap`), on guaranteed no-op batches (where
//! hash-consing must keep the root id bit-identical), on chains of
//! batches applied to one long-lived chain, and exhaustively on every
//! packet of a tiny 2-field schema — mirroring `recompile_agree.rs` one
//! layer down.

use diverse_firewall::core::{
    compare_firewalls, BatchPlan, ChangeImpact, Edit, Fdd, MaintainedFdd,
};
use diverse_firewall::model::{Decision, FieldDef, Firewall, Packet, Schema};
use diverse_firewall::synth::{evolve, EvolutionProfile, PacketTrace, Synthesizer};
use proptest::prelude::*;

const BATCH_SIZES: [usize; 3] = [1, 4, 16];

/// Probe packets: a random trace plus a rule-region-biased one, so both
/// the broad domain and the corridors the rules carve get coverage.
fn probes(fw: &Firewall, n: usize, seed: u64) -> Vec<Packet> {
    let random = PacketTrace::random(fw.schema().clone(), n, seed);
    let biased = PacketTrace::biased(fw, n, 0.3, seed + 1);
    random
        .packets()
        .iter()
        .chain(biased.packets())
        .cloned()
        .collect()
}

fn edits_for(fw: &Firewall, k: usize, seed: u64) -> Vec<Edit> {
    evolve(fw, k, &EvolutionProfile::default(), seed)
        .into_iter()
        .map(|s| s.edit)
        .collect()
}

/// The chain's exported diagram must decide every probe exactly as the
/// first-match scan and the from-scratch construction do.
fn assert_chain_serves(m: &MaintainedFdd, packets: &[Packet], tag: &str) {
    let exported = m.to_fdd().unwrap();
    let fresh = Fdd::from_firewall_fast(m.firewall()).unwrap();
    for p in packets {
        let linear = m.firewall().decision_for(p).expect("comprehensive policy");
        assert_eq!(linear, exported.evaluate(p), "{tag}: chain diverges at {p}");
        assert_eq!(
            linear,
            fresh.evaluate(p),
            "{tag}: fresh construction diverges at {p}"
        );
    }
}

/// The maintained impact must agree with the whole-policy comparison
/// pipeline: same affected-packet cardinality, and the same membership
/// verdict on every probe.
fn assert_impact_agrees(
    before: &Firewall,
    after: &Firewall,
    impact: &ChangeImpact,
    packets: &[Packet],
    tag: &str,
) {
    let full = compare_firewalls(before, after).unwrap();
    let full_count: u128 = full
        .iter()
        .fold(0u128, |n, d| n.saturating_add(d.packet_count()));
    assert_eq!(
        impact.affected_packets(),
        full_count,
        "{tag}: affected-packet count diverges from compare_firewalls"
    );
    for p in packets {
        let in_full = full.iter().any(|d| d.predicate().matches(p));
        assert_eq!(
            impact.affects(p),
            in_full,
            "{tag}: affects({p}) diverges from compare_firewalls"
        );
        assert_eq!(
            impact.affects(p),
            before.decision_for(p) != after.decision_for(p),
            "{tag}: affects({p}) diverges from first-match semantics"
        );
    }
}

/// One maintained batch, checked against both oracles; returns the
/// impact for callers that assert more.
fn assert_maintained_batch(
    m: &mut MaintainedFdd,
    edits: &[Edit],
    packets: &[Packet],
    tag: &str,
) -> ChangeImpact {
    let before = m.firewall().clone();
    let impact = m.apply_edits(edits).unwrap();
    assert_chain_serves(m, packets, tag);
    assert_impact_agrees(&before, m.firewall(), &impact, packets, tag);
    let (of_edits_after, of_edits_impact) = ChangeImpact::of_edits(&before, edits).unwrap();
    assert_eq!(&of_edits_after, m.firewall(), "{tag}: policies diverge");
    assert_eq!(
        impact.affected_packets(),
        of_edits_impact.affected_packets(),
        "{tag}: maintained impact diverges from of_edits"
    );
    impact
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: on random synthesized policies, the freshly built chain
    /// serves the policy, and every evolved edit batch (sizes 1/4/16,
    /// the default profile includes `Swap`) patches it to a chain that
    /// still agrees with the from-scratch construction, the full
    /// comparison pipeline, and `of_edits`.
    #[test]
    fn maintained_chain_equals_fresh_on_random_policies(
        seed in 0u64..10_000,
        rules in 2usize..30,
        edit_seed in 0u64..1_000,
    ) {
        let fw = Synthesizer::new(seed).firewall(rules);
        let packets = probes(&fw, 200, edit_seed);
        let base = MaintainedFdd::new(fw.clone()).unwrap();
        assert_chain_serves(&base, &packets, "fresh chain");
        for k in BATCH_SIZES {
            let mut m = base.clone();
            let edits = edits_for(&fw, k, edit_seed + k as u64);
            assert_maintained_batch(&mut m, &edits, &packets, &format!("k={k}"));
        }
    }

    /// Property: batches applied one after another to a single long-lived
    /// chain stay exact — the serving-loop shape, where compaction may
    /// strike at any batch boundary.
    #[test]
    fn chained_batches_stay_exact(
        seed in 0u64..10_000,
        steps in 1usize..5,
    ) {
        let fw = Synthesizer::new(seed).firewall(14);
        let mut m = MaintainedFdd::new(fw.clone()).unwrap();
        for step in 0..steps {
            let packets = probes(m.firewall(), 120, seed + step as u64);
            let edits = edits_for(m.firewall(), 3, seed * 31 + step as u64);
            assert_maintained_batch(&mut m, &edits, &packets, &format!("step {step}"));
        }
    }
}

/// A batch that replaces every rule with itself changes no packet:
/// hash-consing must keep the root id bit-identical, and the impact must
/// be a no-op with zero affected packets.
#[test]
fn noop_batches_keep_the_root_id() {
    for seed in [5u64, 17, 99] {
        let fw = Synthesizer::new(seed).firewall(12);
        let mut m = MaintainedFdd::new(fw.clone()).unwrap();
        let root = m.root();
        let edits: Vec<Edit> = (0..fw.len())
            .map(|i| Edit::Replace {
                index: i,
                rule: fw.rules()[i].clone(),
            })
            .collect();
        let impact = m.apply_edits(&edits).unwrap();
        assert_eq!(
            m.root(),
            root,
            "seed {seed}: self-replacement moved the root"
        );
        assert!(
            impact.is_noop(),
            "seed {seed}: self-replacement must be a no-op"
        );
        assert_eq!(impact.affected_packets(), 0);
    }
}

/// Swapping two rules and swapping them back is the identity; a single
/// swap of overlapping rules is tracked exactly.
#[test]
fn swaps_round_trip() {
    let fw = Synthesizer::new(23).firewall(16);
    let packets = probes(&fw, 200, 7);
    let mut m = MaintainedFdd::new(fw.clone()).unwrap();
    let root = m.root();
    assert_maintained_batch(
        &mut m,
        &[Edit::Swap {
            first: 2,
            second: 9,
        }],
        &packets,
        "swap",
    );
    assert_maintained_batch(
        &mut m,
        &[Edit::Swap {
            first: 2,
            second: 9,
        }],
        &packets,
        "swap back",
    );
    assert_eq!(m.root(), root, "swap round trip must restore the root id");
    assert_eq!(&fw, m.firewall());
}

/// An edit that leaves some packet undecided must be rejected and leave
/// the maintained state untouched — policy, root id, and service.
#[test]
fn non_comprehensive_edits_roll_back() {
    let fw = Synthesizer::new(3).firewall(8);
    let packets = probes(&fw, 100, 11);
    let mut m = MaintainedFdd::new(fw.clone()).unwrap();
    let root = m.root();
    // Removing the final catch-all leaves the leftover region undecided.
    let err = m
        .apply_edits(&[Edit::Remove {
            index: fw.len() - 1,
        }])
        .unwrap_err();
    assert!(
        err.to_string().contains("not comprehensive"),
        "unexpected error: {err}"
    );
    assert_eq!(&fw, m.firewall(), "rollback must restore the policy");
    assert_eq!(m.root(), root, "rollback must restore the root");
    assert_chain_serves(&m, &packets, "after rollback");
    // The chain still accepts further (valid) edits after a rollback.
    let flip = fw.rules()[0].with_decision(fw.rules()[0].decision().inverted());
    assert_maintained_batch(
        &mut m,
        &[Edit::Replace {
            index: 0,
            rule: flip,
        }],
        &packets,
        "edit after rollback",
    );
}

/// The coalesced one-sweep batch must land on exactly the state that
/// applying the same edits one at a time (each as its own batch) lands
/// on: same policy, and diagrams that decide every probe identically.
/// The per-edit replay is the pre-coalescing semantics, so this is the
/// direct oracle for the batched sweep.
#[test]
fn coalesced_batch_matches_sequential_per_edit_replay() {
    for (seed, rules) in [(41u64, 10usize), (87, 22), (311, 30)] {
        let fw = Synthesizer::new(seed).firewall(rules);
        let packets = probes(&fw, 200, seed + 13);
        let base = MaintainedFdd::new(fw.clone()).unwrap();
        for k in BATCH_SIZES {
            let edits = edits_for(&fw, k, seed * 7 + k as u64);
            let tag = format!("seed {seed}, k={k}");

            let mut coalesced = base.clone();
            assert_maintained_batch(&mut coalesced, &edits, &packets, &tag);

            let mut sequential = base.clone();
            for (i, e) in edits.iter().enumerate() {
                sequential
                    .apply_edits(std::slice::from_ref(e))
                    .unwrap_or_else(|err| panic!("{tag}: sequential edit {i} failed: {err}"));
            }

            assert_eq!(
                coalesced.firewall(),
                sequential.firewall(),
                "{tag}: batched and per-edit replay disagree on the policy"
            );
            let c = coalesced.to_fdd().unwrap();
            let s = sequential.to_fdd().unwrap();
            for p in &packets {
                assert_eq!(
                    c.evaluate(p),
                    s.evaluate(p),
                    "{tag}: batched and per-edit diagrams diverge at {p}"
                );
            }
        }
    }
}

/// Adversarial hand-rolled batches the evolver rarely produces: an
/// insert immediately cancelled by a remove of the same slot (a net
/// no-op that must keep the root id), duplicate-target replaces where
/// the later edit wins, and edits at adjacent indices whose corridors
/// overlap after the insert shifts the tail.
#[test]
fn adversarial_batches_match_the_oracles() {
    let fw = Synthesizer::new(59).firewall(12);
    let packets = probes(&fw, 200, 29);
    let base = MaintainedFdd::new(fw.clone()).unwrap();
    let flipped = |i: usize| fw.rules()[i].with_decision(fw.rules()[i].decision().inverted());

    // Insert at 3 then remove slot 3: the remove strikes the rule the
    // insert just placed, so the batch is the identity on the policy.
    let mut m = base.clone();
    let impact = assert_maintained_batch(
        &mut m,
        &[
            Edit::Insert {
                index: 3,
                rule: flipped(0),
            },
            Edit::Remove { index: 3 },
        ],
        &packets,
        "insert+remove same slot",
    );
    assert!(impact.is_noop(), "insert+remove same slot must be a no-op");
    assert_eq!(
        m.root(),
        base.root(),
        "a cancelling batch must re-intern to the old root id"
    );
    assert_eq!(&fw, m.firewall());

    // Two replaces aimed at the same index: only the later one shows.
    let mut m = base.clone();
    assert_maintained_batch(
        &mut m,
        &[
            Edit::Replace {
                index: 5,
                rule: flipped(0),
            },
            Edit::Replace {
                index: 5,
                rule: flipped(5),
            },
        ],
        &packets,
        "duplicate-target replaces",
    );
    assert_eq!(
        m.firewall().rules()[5],
        flipped(5),
        "the later duplicate-target replace must win"
    );

    // Adjacent indices: replace 4, insert at 5, replace the shifted 6 —
    // three edits whose dirty positions fuse into one corridor.
    let mut m = base.clone();
    assert_maintained_batch(
        &mut m,
        &[
            Edit::Replace {
                index: 4,
                rule: flipped(4),
            },
            Edit::Insert {
                index: 5,
                rule: flipped(2),
            },
            Edit::Replace {
                index: 6,
                rule: flipped(5),
            },
        ],
        &packets,
        "adjacent overlapping corridors",
    );

    // Remove then insert at the same index: a replace spelled as two
    // edits, landing the new rule exactly where the old one sat.
    let mut m = base.clone();
    assert_maintained_batch(
        &mut m,
        &[
            Edit::Remove { index: 7 },
            Edit::Insert {
                index: 7,
                rule: flipped(7),
            },
        ],
        &packets,
        "remove+insert same slot",
    );
    assert_eq!(m.firewall().rules()[7], flipped(7));
}

/// Forcing each [`BatchPlan`] arm on the same batch must intern to the
/// same root id (hash-consing makes the arms' diagrams one node), report
/// the same impact, and leave identical policies — and the heuristic's
/// own pick must match one of the forced runs exactly.
#[test]
fn forced_plans_produce_identical_diagrams() {
    for (seed, rules, k) in [(71u64, 12usize, 4usize), (140, 18, 16), (9, 25, 8)] {
        let fw = Synthesizer::new(seed).firewall(rules);
        let packets = probes(&fw, 150, seed + 3);
        let base = MaintainedFdd::new(fw.clone()).unwrap();
        let edits = edits_for(&fw, k, seed * 11 + 1);
        let tag = format!("seed {seed}, k={k}");

        let mut swept = base.clone();
        let swept_stats = swept.apply_planned(&edits, BatchPlan::Coalesced).unwrap();
        let mut rebuilt = base.clone();
        let rebuilt_stats = rebuilt
            .apply_planned(&edits, BatchPlan::FullRebuild)
            .unwrap();
        assert_eq!(swept_stats.plan, BatchPlan::Coalesced);
        assert_eq!(rebuilt_stats.plan, BatchPlan::FullRebuild);

        assert_eq!(
            swept.firewall(),
            rebuilt.firewall(),
            "{tag}: forced arms disagree on the policy"
        );
        assert_eq!(
            swept.root(),
            rebuilt.root(),
            "{tag}: forced arms intern to different roots"
        );
        assert_chain_serves(&swept, &packets, &format!("{tag}, coalesced arm"));
        assert_chain_serves(&rebuilt, &packets, &format!("{tag}, rebuild arm"));
        assert_eq!(
            swept.diff_from(base.root()).unwrap().affected_packets(),
            rebuilt.diff_from(base.root()).unwrap().affected_packets(),
            "{tag}: forced arms report different impacts"
        );

        let mut chosen = base.clone();
        let chosen_stats = chosen.apply_with_stats(&edits).unwrap();
        assert_eq!(
            chosen.root(),
            swept.root(),
            "{tag}: the heuristic's pick diverges from the forced arms"
        );
        assert!(
            chosen_stats.plan == BatchPlan::Coalesced
                || chosen_stats.plan == BatchPlan::FullRebuild
        );
    }
}

/// Exhaustive oracle: on a tiny 2-field schema (3 bits each) all 64
/// packets are enumerable, so the maintained chain and its diffs are
/// checked cell-by-cell — for evolved batches of every size in
/// [`BATCH_SIZES`] and for a hand-rolled batch exercising every `Edit`
/// variant (including a no-op self-replacement) in one sequence.
#[test]
fn maintained_matches_exhaustive_oracle_on_tiny_schema() {
    let schema = Schema::new(vec![
        FieldDef::new("a", 3).unwrap(),
        FieldDef::new("b", 3).unwrap(),
    ])
    .unwrap();
    let decisions = [Decision::Accept, Decision::Discard, Decision::AcceptLog];
    let all: Vec<Packet> = (0..8u64)
        .flat_map(|a| (0..8u64).map(move |b| Packet::new(vec![a, b])))
        .collect();

    for k in 0..8u64 {
        let (a_lo, a_hi) = (k % 5, (k % 5) + 3);
        let (b_lo, b_hi) = ((k * 3) % 6, ((k * 3) % 6) + 1);
        let d1 = decisions[(k % 3) as usize];
        let d2 = decisions[((k + 1) % 3) as usize];
        let d3 = decisions[((k + 2) % 3) as usize];
        let text =
            format!("a={a_lo}-{a_hi}, b={b_lo}-{b_hi} -> {d1}\nb={b_lo} -> {d2}\n* -> {d3}\n");
        let fw = Firewall::parse(schema.clone(), &text).unwrap();
        let base = MaintainedFdd::new(fw.clone()).unwrap();
        assert_chain_serves(&base, &all, &format!("policy {k}, fresh"));

        for batch in BATCH_SIZES {
            let mut m = base.clone();
            let edits = edits_for(&fw, batch, k * 31 + batch as u64);
            assert_maintained_batch(&mut m, &edits, &all, &format!("policy {k}, k={batch}"));
        }

        let flipped = fw.rules()[0].with_decision(fw.rules()[0].decision().inverted());
        let widened = fw.rules()[1].with_decision(fw.rules()[1].decision().inverted());
        let mixed = vec![
            Edit::Replace {
                index: 0,
                rule: fw.rules()[0].clone(), // no-op self-replacement
            },
            Edit::Replace {
                index: 0,
                rule: flipped,
            },
            Edit::Insert {
                index: 1,
                rule: widened,
            },
            Edit::Swap {
                first: 0,
                second: 1,
            },
            Edit::Remove { index: 1 },
        ];
        let mut m = base.clone();
        assert_maintained_batch(&mut m, &mixed, &all, &format!("policy {k}, mixed batch"));
    }
}

/// Doubling sweep on the tiny schema: batch sizes 1/2/4/8 checked
/// against all 64 packets, straddling the rebuild crossover — an 8-edit
/// batch that dirties every position of a 3-rule policy must take the
/// `FullRebuild` arm, while the smaller batches stay `Coalesced`, and
/// both regimes must pass the same exhaustive oracle.
#[test]
fn tiny_schema_sweep_crosses_the_rebuild_crossover() {
    let schema = Schema::new(vec![
        FieldDef::new("a", 3).unwrap(),
        FieldDef::new("b", 3).unwrap(),
    ])
    .unwrap();
    let all: Vec<Packet> = (0..8u64)
        .flat_map(|a| (0..8u64).map(move |b| Packet::new(vec![a, b])))
        .collect();
    let fw = Firewall::parse(
        schema,
        "a=1-4, b=0-5 -> discard\nb=2-3 -> accept-log\n* -> accept\n",
    )
    .unwrap();
    let base = MaintainedFdd::new(fw.clone()).unwrap();

    for k in [1usize, 2, 4, 8] {
        // k replaces cycling over the positions: for k=8 every position
        // of the 3-rule policy is dirtied, tripping the crossover.
        let edits: Vec<Edit> = (0..k)
            .map(|i| {
                let index = i % fw.len();
                Edit::Replace {
                    index,
                    rule: fw.rules()[index].with_decision(fw.rules()[index].decision().inverted()),
                }
            })
            .collect();
        let mut m = base.clone();
        let before = m.firewall().clone();
        let (impact, stats) = m.apply_edits_with_stats(&edits).unwrap();
        let expected = if k >= 8 {
            BatchPlan::FullRebuild
        } else {
            BatchPlan::Coalesced
        };
        assert_eq!(stats.plan, expected, "k={k} picked the wrong arm");
        assert_eq!(stats.edits, k);
        assert_chain_serves(&m, &all, &format!("tiny sweep k={k}"));
        assert_impact_agrees(
            &before,
            m.firewall(),
            &impact,
            &all,
            &format!("tiny sweep k={k}"),
        );
    }
}
