//! End-to-end reproduction of the paper's running example: Tables 1–7 and
//! Figures 2–5, asserted across crate boundaries.

use diverse_firewall::core::{
    compare_firewalls, compare_firewalls_via_shaping, diff_firewalls, semi_isomorphic, shape_pair,
    Fdd,
};
use diverse_firewall::diverse::{finalize, method1, method2, verify_final, Comparison, Resolution};
use diverse_firewall::gen::analyze_redundancy;
use diverse_firewall::model::{paper, Decision, FieldId, Packet};

/// The paper's Table 4 resolution: discard, accept, discard.
fn table4(cmp: &Comparison) -> Resolution {
    Resolution::by(cmp, |d| {
        let proto = d.predicate().set(FieldId(4));
        let src = d.predicate().set(FieldId(1));
        if proto.contains(paper::UDP)
            && !proto.contains(paper::TCP)
            && !src.contains(paper::MALICIOUS_LO)
        {
            Decision::Accept
        } else {
            Decision::Discard
        }
    })
}

#[test]
fn figures_2_and_3_constructions_are_valid_and_faithful() {
    for fw in [paper::team_a(), paper::team_b()] {
        let fdd = Fdd::from_firewall(&fw).unwrap();
        fdd.validate().unwrap();
        assert!(fdd.is_tree());
        assert_eq!(fdd.depth(), 5);
        // Construction = first-match on a broad witness set.
        for p in fw.witnesses() {
            assert_eq!(fdd.decision_for(&p), fw.decision_for(&p));
        }
    }
}

#[test]
fn figures_4_and_5_shaping_yields_semi_isomorphic_pair() {
    let mut a = Fdd::from_firewall(&paper::team_a()).unwrap().to_simple();
    let mut b = Fdd::from_firewall(&paper::team_b()).unwrap().to_simple();
    shape_pair(&mut a, &mut b).unwrap();
    assert!(semi_isomorphic(&a, &b));
    a.validate().unwrap();
    b.validate().unwrap();
}

#[test]
fn table_3_discrepancies_by_both_pipelines() {
    let fast = compare_firewalls(&paper::team_a(), &paper::team_b()).unwrap();
    let literal = compare_firewalls_via_shaping(&paper::team_a(), &paper::team_b()).unwrap();
    assert_eq!(fast.len(), 3);
    assert_eq!(literal.len(), 3);
    // Same disputed space: witnesses of each appear in the other.
    for (xs, ys) in [(&fast, &literal), (&literal, &fast)] {
        for d in xs.iter() {
            let w = d.witness();
            assert!(ys.iter().any(|e| e.predicate().matches(&w)
                && e.left() == d.left()
                && e.right() == d.right()));
        }
    }
}

#[test]
fn tables_5_6_7_all_equivalent_and_verified() {
    let cmp = Comparison::of(vec![paper::team_a(), paper::team_b()]).unwrap();
    let res = table4(&cmp);
    let t5 = method1(&cmp, &res).unwrap();
    let t6 = method2(&cmp, &res, 0).unwrap();
    let t7 = method2(&cmp, &res, 1).unwrap();
    assert!(fw_core::equivalent(&t5, &t6).unwrap());
    assert!(fw_core::equivalent(&t5, &t7).unwrap());
    verify_final(&cmp, &res, &t5).unwrap();
    verify_final(&cmp, &res, &t6).unwrap();
    verify_final(&cmp, &res, &t7).unwrap();
    // Generated finals carry no redundancy.
    assert!(analyze_redundancy(&t5).redundant.is_empty());

    // Spot-check the agreed semantics on the three §5 questions.
    let agreed = finalize(&cmp, &res).unwrap();
    let q1 = Packet::new(vec![
        0,
        paper::MALICIOUS_LO,
        paper::MAIL_SERVER,
        25,
        paper::TCP,
    ]);
    assert_eq!(agreed.decision_for(&q1), Some(Decision::Discard));
    let q2 = Packet::new(vec![0, 1, paper::MAIL_SERVER, 25, paper::UDP]);
    assert_eq!(agreed.decision_for(&q2), Some(Decision::Accept));
    let q3 = Packet::new(vec![0, 1, paper::MAIL_SERVER, 80, paper::TCP]);
    assert_eq!(agreed.decision_for(&q3), Some(Decision::Discard));
}

#[test]
fn diff_product_counts_match_the_example() {
    let prod = diff_firewalls(&paper::team_a(), &paper::team_b()).unwrap();
    assert!(!prod.is_equivalent());
    // All disputed packets are inbound (iface 0) to the mail server.
    let total = prod.packet_count();
    assert!(total > 0);
    // Disputed region 1 alone: one src /16 × port 25 × TCP = 2^16 packets;
    // sanity lower bound.
    assert!(total >= 1 << 16);
    // And the product agrees with the two originals pointwise on a sample.
    let (a, b) = (paper::team_a(), paper::team_b());
    for d in prod.discrepancies() {
        let w = d.witness();
        assert_eq!(a.decision_for(&w), Some(d.left()));
        assert_eq!(b.decision_for(&w), Some(d.right()));
    }
}
