//! Cross-validation of the two comparison pipelines (paper-literal tree
//! shaping vs memoised synchronized product) and of the two multi-version
//! comparison modes (cross vs direct, §7.3), on generated workloads.

use diverse_firewall::core::{
    compare_firewalls, compare_firewalls_via_shaping, cross_compare, direct_compare, project_pair,
};
use diverse_firewall::synth::{perturb, PacketTrace, Synthesizer};

#[test]
fn literal_and_product_pipelines_agree_on_synthetic_pairs() {
    for seed in 0..4u64 {
        let a = Synthesizer::new(seed).firewall(12);
        let b = Synthesizer::new(seed + 100).firewall(12);
        let fast = compare_firewalls(&a, &b).unwrap();
        let literal = compare_firewalls_via_shaping(&a, &b).unwrap();
        // Same disagreement space, witness-checked both ways with decisions.
        for (xs, ys, tag) in [
            (&fast, &literal, "fast⊆literal"),
            (&literal, &fast, "literal⊆fast"),
        ] {
            for d in xs.iter() {
                let w = d.witness();
                assert!(
                    ys.iter().any(|e| e.predicate().matches(&w)
                        && e.left() == d.left()
                        && e.right() == d.right()),
                    "{tag} failed at witness {w} (seed {seed})"
                );
            }
        }
        // And both match ground truth on a trace.
        let trace = PacketTrace::random(a.schema().clone(), 5_000, seed);
        for p in trace.packets() {
            let differs = a.decision_for(p) != b.decision_for(p);
            let in_fast = fast.iter().any(|d| d.predicate().matches(p));
            let in_lit = literal.iter().any(|d| d.predicate().matches(p));
            assert_eq!(in_fast, differs, "fast at {p} (seed {seed})");
            assert_eq!(in_lit, differs, "literal at {p} (seed {seed})");
        }
    }
}

#[test]
fn perturbed_pairs_round_trip_through_both_pipelines() {
    let base = Synthesizer::new(42).firewall(15);
    let derived = perturb(&base, 30, 5);
    let fast = compare_firewalls(&base, &derived).unwrap();
    let literal = compare_firewalls_via_shaping(&base, &derived).unwrap();
    let trace = PacketTrace::random(base.schema().clone(), 5_000, 9);
    for p in trace.packets() {
        let differs = base.decision_for(p) != derived.decision_for(p);
        assert_eq!(fast.iter().any(|d| d.predicate().matches(p)), differs);
        assert_eq!(literal.iter().any(|d| d.predicate().matches(p)), differs);
    }
}

#[test]
fn cross_and_direct_comparison_agree_for_three_versions() {
    let versions = vec![
        Synthesizer::new(1).firewall(10),
        Synthesizer::new(2).firewall(10),
        Synthesizer::new(3).firewall(10),
    ];
    let cross = cross_compare(&versions).unwrap();
    let direct = direct_compare(&versions).unwrap();
    for ((i, j), pairwise) in cross {
        let projected = project_pair(&direct, i, j);
        // Same disputed space per pair.
        for d in &pairwise {
            let w = d.witness();
            assert!(
                projected.iter().any(|e| e.predicate().matches(&w)),
                "direct missed ({i},{j}) at {w}"
            );
        }
        for d in &projected {
            let w = d.witness();
            assert!(
                pairwise.iter().any(|e| e.predicate().matches(&w)),
                "cross missed ({i},{j}) at {w}"
            );
        }
    }
}

#[test]
fn bdd_baseline_agrees_with_fdd_pipeline_on_equivalence() {
    use diverse_firewall::bdd::{diff, BddManager, DecisionBdds, ZERO};
    for seed in 0..3u64 {
        let a = Synthesizer::new(seed + 10).firewall(10);
        let b = Synthesizer::new(seed + 400).firewall(10);
        let fdd_equal = fw_core::equivalent(&a, &b).unwrap();
        let mut m = BddManager::new(a.schema().clone());
        let ea = DecisionBdds::from_firewall(&mut m, &a);
        let eb = DecisionBdds::from_firewall(&mut m, &b);
        let bdd_equal = diff(&mut m, &ea, &eb) == ZERO;
        assert_eq!(fdd_equal, bdd_equal, "seed {seed}");
        // Identity case through the BDD engine.
        let eaa = DecisionBdds::from_firewall(&mut m, &a);
        assert_eq!(diff(&mut m, &ea, &eaa), ZERO);
    }
}
