//! Cross-validation of the comparison pipelines (paper-literal tree
//! shaping vs memoised synchronized product vs the sharded parallel
//! engine) and of the two multi-version comparison modes (cross vs
//! direct, §7.3), on generated workloads and an exhaustive oracle.

use diverse_firewall::core::{
    compare_firewalls, compare_firewalls_parallel, compare_firewalls_via_shaping, cross_compare,
    direct_compare, project_pair,
};
use diverse_firewall::synth::{perturb, PacketTrace, Synthesizer};
use proptest::prelude::*;

#[test]
fn literal_and_product_pipelines_agree_on_synthetic_pairs() {
    for seed in 0..4u64 {
        let a = Synthesizer::new(seed).firewall(12);
        let b = Synthesizer::new(seed + 100).firewall(12);
        let fast = compare_firewalls(&a, &b).unwrap();
        let literal = compare_firewalls_via_shaping(&a, &b).unwrap();
        // Same disagreement space, witness-checked both ways with decisions.
        for (xs, ys, tag) in [
            (&fast, &literal, "fast⊆literal"),
            (&literal, &fast, "literal⊆fast"),
        ] {
            for d in xs.iter() {
                let w = d.witness();
                assert!(
                    ys.iter().any(|e| e.predicate().matches(&w)
                        && e.left() == d.left()
                        && e.right() == d.right()),
                    "{tag} failed at witness {w} (seed {seed})"
                );
            }
        }
        // And both match ground truth on a trace.
        let trace = PacketTrace::random(a.schema().clone(), 5_000, seed);
        for p in trace.packets() {
            let differs = a.decision_for(p) != b.decision_for(p);
            let in_fast = fast.iter().any(|d| d.predicate().matches(p));
            let in_lit = literal.iter().any(|d| d.predicate().matches(p));
            assert_eq!(in_fast, differs, "fast at {p} (seed {seed})");
            assert_eq!(in_lit, differs, "literal at {p} (seed {seed})");
        }
    }
}

#[test]
fn perturbed_pairs_round_trip_through_both_pipelines() {
    let base = Synthesizer::new(42).firewall(15);
    let derived = perturb(&base, 30, 5);
    let fast = compare_firewalls(&base, &derived).unwrap();
    let literal = compare_firewalls_via_shaping(&base, &derived).unwrap();
    let trace = PacketTrace::random(base.schema().clone(), 5_000, 9);
    for p in trace.packets() {
        let differs = base.decision_for(p) != derived.decision_for(p);
        assert_eq!(fast.iter().any(|d| d.predicate().matches(p)), differs);
        assert_eq!(literal.iter().any(|d| d.predicate().matches(p)), differs);
    }
}

#[test]
fn cross_and_direct_comparison_agree_for_three_versions() {
    let versions = vec![
        Synthesizer::new(1).firewall(10),
        Synthesizer::new(2).firewall(10),
        Synthesizer::new(3).firewall(10),
    ];
    let cross = cross_compare(&versions).unwrap();
    let direct = direct_compare(&versions).unwrap();
    for ((i, j), pairwise) in cross {
        let projected = project_pair(&direct, i, j);
        // Same disputed space per pair.
        for d in &pairwise {
            let w = d.witness();
            assert!(
                projected.iter().any(|e| e.predicate().matches(&w)),
                "direct missed ({i},{j}) at {w}"
            );
        }
        for d in &projected {
            let w = d.witness();
            assert!(
                pairwise.iter().any(|e| e.predicate().matches(&w)),
                "cross missed ({i},{j}) at {w}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: on random synthesized pairs, the parallel sharded engine
    /// produces the *identical* discrepancy list (same regions, same
    /// order) as the serial product pipeline, for every thread count.
    #[test]
    fn parallel_engine_matches_serial_on_random_pairs(
        seed_a in 0u64..10_000,
        seed_b in 10_000u64..20_000,
        rules_a in 2usize..24,
        rules_b in 2usize..24,
    ) {
        let a = Synthesizer::new(seed_a).firewall(rules_a);
        let b = Synthesizer::new(seed_b).firewall(rules_b);
        let serial = compare_firewalls(&a, &b).unwrap();
        for jobs in [1usize, 2, 8] {
            let parallel = compare_firewalls_parallel(&a, &b, jobs).unwrap();
            prop_assert_eq!(&serial, &parallel, "jobs={}", jobs);
        }
    }

    /// Property: the parallel engine, the serial product and the
    /// paper-literal shaping pipeline all describe the same disagreement
    /// space with the same decisions (shaping may partition regions
    /// differently, so agreement is witness-checked both ways).
    #[test]
    fn all_three_pipelines_agree_on_random_pairs(
        seed in 0u64..5_000,
        rules in 2usize..14,
    ) {
        let a = Synthesizer::new(seed).firewall(rules);
        let b = Synthesizer::new(seed.wrapping_add(77_777)).firewall(rules);
        let parallel = compare_firewalls_parallel(&a, &b, 2).unwrap();
        let shaped = compare_firewalls_via_shaping(&a, &b).unwrap();
        for (xs, ys, tag) in [
            (&parallel, &shaped, "parallel⊆shaping"),
            (&shaped, &parallel, "shaping⊆parallel"),
        ] {
            for d in xs.iter() {
                let w = d.witness();
                prop_assert!(
                    ys.iter().any(|e| e.predicate().matches(&w)
                        && e.left() == d.left()
                        && e.right() == d.right()),
                    "{} failed at witness {} (seed {})", tag, w, seed
                );
            }
        }
    }
}

/// Exhaustive ground-truth oracle: on a tiny 2-field schema every packet
/// is enumerable, so every pipeline is checked cell-by-cell against
/// first-match evaluation ([`Firewall::decision_for`]).
#[test]
fn all_pipelines_match_exhaustive_oracle_on_tiny_schema() {
    use diverse_firewall::model::{Decision, FieldDef, Firewall, Packet, Schema};

    let schema = Schema::new(vec![
        FieldDef::new("a", 3).unwrap(),
        FieldDef::new("b", 3).unwrap(),
    ])
    .unwrap();
    let decisions = [Decision::Accept, Decision::Discard, Decision::AcceptLog];

    // A deterministic family of tiny policies: every combination of two
    // interval rules plus a catch-all, swept over offsets and decisions.
    let mut policies: Vec<Firewall> = Vec::new();
    for k in 0..12u64 {
        let (a_lo, a_hi) = (k % 5, (k % 5) + 3);
        let (b_lo, b_hi) = ((k * 3) % 6, ((k * 3) % 6) + 1);
        let d1 = decisions[(k % 3) as usize];
        let d2 = decisions[((k + 1) % 3) as usize];
        let d3 = decisions[((k + 2) % 3) as usize];
        let text =
            format!("a={a_lo}-{a_hi}, b={b_lo}-{b_hi} -> {d1}\nb={b_lo} -> {d2}\n* -> {d3}\n");
        policies.push(Firewall::parse(schema.clone(), &text).unwrap());
    }

    let mut checked_pairs = 0usize;
    for (i, fa) in policies.iter().enumerate() {
        for fb in policies.iter().skip(i + 1) {
            let serial = compare_firewalls(fa, fb).unwrap();
            let shaped = compare_firewalls_via_shaping(fa, fb).unwrap();
            for jobs in [1usize, 2, 8] {
                let parallel = compare_firewalls_parallel(fa, fb, jobs).unwrap();
                assert_eq!(serial, parallel, "pair {i}, jobs={jobs}");
            }
            // Brute force over all 64 packets: membership in the reported
            // regions must equal actual disagreement, and the reported
            // decisions must be the actual decisions.
            for a in 0..8u64 {
                for b in 0..8u64 {
                    let p = Packet::new(vec![a, b]);
                    let (da, db) = (fa.decision_for(&p).unwrap(), fb.decision_for(&p).unwrap());
                    let differs = da != db;
                    for (ds, tag) in [(&serial, "serial"), (&shaped, "shaping")] {
                        let hit = ds.iter().find(|d| d.predicate().matches(&p));
                        assert_eq!(hit.is_some(), differs, "{tag} at {p}");
                        if let Some(d) = hit {
                            assert_eq!((d.left(), d.right()), (da, db), "{tag} at {p}");
                        }
                    }
                }
            }
            checked_pairs += 1;
        }
    }
    assert_eq!(checked_pairs, policies.len() * (policies.len() - 1) / 2);
}

#[test]
fn bdd_baseline_agrees_with_fdd_pipeline_on_equivalence() {
    use diverse_firewall::bdd::{diff, BddManager, DecisionBdds, ZERO};
    for seed in 0..3u64 {
        let a = Synthesizer::new(seed + 10).firewall(10);
        let b = Synthesizer::new(seed + 400).firewall(10);
        let fdd_equal = fw_core::equivalent(&a, &b).unwrap();
        let mut m = BddManager::new(a.schema().clone());
        let ea = DecisionBdds::from_firewall(&mut m, &a);
        let eb = DecisionBdds::from_firewall(&mut m, &b);
        let bdd_equal = diff(&mut m, &ea, &eb) == ZERO;
        assert_eq!(fdd_equal, bdd_equal, "seed {seed}");
        // Identity case through the BDD engine.
        let eaa = DecisionBdds::from_firewall(&mut m, &a);
        assert_eq!(diff(&mut m, &ea, &eaa), ZERO);
    }
}
