//! Equivalence oracle for incremental recompilation: for any edit batch,
//! the image produced by [`CompiledFdd::recompile`] (splicing fresh
//! subtrees into the pre-edit image) must be indistinguishable from a
//! fresh [`CompiledFdd::from_firewall`] of the post-edit policy — same
//! decision on every probed packet, through the scalar matcher, the lane
//! kernel at several widths, and a wire-format round trip of the spliced
//! image. Probed on random policies with `fw_synth::evolve` edit batches
//! of sizes {1, 4, 16}, on chains of splices (each spliced image the base
//! of the next), on guaranteed no-op batches, and exhaustively on every
//! packet of a tiny 2-field schema.

use diverse_firewall::core::{ChangeImpact, Edit, Fdd};
use diverse_firewall::exec::{CompiledFdd, PacketBatch, DEFAULT_LANE_WIDTH};
use diverse_firewall::model::{Decision, FieldDef, Firewall, Packet, Schema};
use diverse_firewall::synth::{evolve, EvolutionProfile, PacketTrace, Synthesizer};
use proptest::prelude::*;

const BATCH_SIZES: [usize; 3] = [1, 4, 16];

/// Lane widths that stress the spliced image's mirror: degenerate (1),
/// misaligned (3), the tuned default, and one chunk per batch.
fn lane_widths(batch_len: usize) -> [usize; 4] {
    [1, 3, DEFAULT_LANE_WIDTH, batch_len.max(1)]
}

/// Applies `edits` to `fw` through the full incremental pipeline
/// (impact → post-edit FDD → splice) and asserts the spliced image, a
/// fresh compile, and a decode of the spliced wire image all agree with
/// first-match semantics on every probe packet; returns the post-edit
/// policy so callers can chain batches.
fn assert_splice_agrees(fw: &Firewall, edits: &[Edit], packets: &[Packet], tag: &str) -> Firewall {
    let base = CompiledFdd::from_firewall(fw).unwrap();
    let (after, impact) = ChangeImpact::of_edits(fw, edits).unwrap();
    let fdd = Fdd::from_firewall_fast(&after).unwrap().reduced();
    let (spliced, stats) = base.recompile(&fdd, &impact).unwrap();
    let fresh = CompiledFdd::from_firewall(&after).unwrap();
    let reloaded = CompiledFdd::decode(fw.schema().clone(), spliced.encode()).unwrap();

    assert_eq!(
        stats.nodes,
        stats.nodes_shared + stats.nodes_fresh,
        "{tag}: node accounting"
    );
    if impact.is_noop() {
        assert_eq!(stats.nodes_fresh, 0, "{tag}: no-op batch must share all");
    }

    let mut expect = Vec::with_capacity(packets.len());
    for p in packets {
        let linear = after.decision_for(p).expect("comprehensive policy");
        assert_eq!(
            linear,
            spliced.classify(p),
            "{tag}: spliced diverges at {p}"
        );
        assert_eq!(linear, fresh.classify(p), "{tag}: fresh diverges at {p}");
        assert_eq!(
            linear,
            reloaded.classify(p),
            "{tag}: decoded splice diverges at {p}"
        );
        expect.push(linear);
    }
    let batch = PacketBatch::from_trace(fw.schema().clone(), packets).unwrap();
    for width in lane_widths(batch.len()) {
        assert_eq!(
            spliced.classify_lanes(&batch, width).unwrap(),
            expect,
            "{tag}: spliced lane kernel diverges at width {width}"
        );
    }
    after
}

fn edits_for(fw: &Firewall, k: usize, seed: u64) -> Vec<Edit> {
    evolve(fw, k, &EvolutionProfile::default(), seed)
        .into_iter()
        .map(|s| s.edit)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: on random synthesized policies, the incremental image is
    /// equivalent to a fresh compile for edit batches of every size in
    /// [`BATCH_SIZES`], probed on random and rule-region-biased traces.
    #[test]
    fn incremental_equals_fresh_on_random_policies(
        seed in 0u64..10_000,
        rules in 2usize..30,
        edit_seed in 0u64..1_000,
    ) {
        let fw = Synthesizer::new(seed).firewall(rules);
        let random = PacketTrace::random(fw.schema().clone(), 257, edit_seed);
        let biased = PacketTrace::biased(&fw, 257, 0.3, edit_seed + 1);
        let packets: Vec<Packet> = random
            .packets()
            .iter()
            .chain(biased.packets())
            .cloned()
            .collect();
        for k in BATCH_SIZES {
            let edits = edits_for(&fw, k, edit_seed + k as u64);
            assert_splice_agrees(&fw, &edits, &packets, &format!("k={k}"));
        }
    }
}

/// A batch that replaces every rule with itself is a semantic no-op: the
/// impact is empty, the splice shares the entire image, and the result
/// still serves the policy exactly.
#[test]
fn noop_batches_share_the_whole_image() {
    for seed in [5u64, 17, 99] {
        let fw = Synthesizer::new(seed).firewall(12);
        let edits: Vec<Edit> = (0..fw.len())
            .map(|i| Edit::Replace {
                index: i,
                rule: fw.rules()[i].clone(),
            })
            .collect();
        let (_, impact) = ChangeImpact::of_edits(&fw, &edits).unwrap();
        assert!(impact.is_noop(), "self-replacement must be a no-op");
        let trace = PacketTrace::biased(&fw, 400, 0.3, seed);
        assert_splice_agrees(&fw, &edits, trace.packets(), &format!("noop seed {seed}"));
    }
}

/// Splice-of-splice: images produced by `recompile` are themselves valid
/// bases for further incremental batches — a serving loop never needs a
/// full recompile to stay correct.
#[test]
fn chained_splices_stay_equivalent() {
    let fw = Synthesizer::new(7).firewall(20);
    let mut cur = fw.clone();
    let mut img = CompiledFdd::from_firewall(&fw).unwrap();
    let trace = PacketTrace::random(fw.schema().clone(), 300, 3);
    for step in 0..6u64 {
        let edits = edits_for(&cur, 2, 100 + step);
        let (after, impact) = ChangeImpact::of_edits(&cur, &edits).unwrap();
        let fdd = Fdd::from_firewall_fast(&after).unwrap().reduced();
        let (next, _) = img.recompile(&fdd, &impact).unwrap();
        for p in trace.packets() {
            assert_eq!(
                next.classify(p),
                after.decision_for(p).unwrap(),
                "step {step}: chained splice diverges at {p}"
            );
        }
        cur = after;
        img = next;
    }
}

/// Exhaustive oracle: on a tiny 2-field schema (3 bits each) all 64
/// packets are enumerable, so the spliced image is checked cell-by-cell
/// against first-match evaluation — for evolved batches of every size in
/// [`BATCH_SIZES`] and for a hand-rolled batch exercising every `Edit`
/// variant (including a no-op self-replacement) in one sequence.
#[test]
fn incremental_matches_exhaustive_oracle_on_tiny_schema() {
    let schema = Schema::new(vec![
        FieldDef::new("a", 3).unwrap(),
        FieldDef::new("b", 3).unwrap(),
    ])
    .unwrap();
    let decisions = [Decision::Accept, Decision::Discard, Decision::AcceptLog];
    let all: Vec<Packet> = (0..8u64)
        .flat_map(|a| (0..8u64).map(move |b| Packet::new(vec![a, b])))
        .collect();

    for k in 0..8u64 {
        let (a_lo, a_hi) = (k % 5, (k % 5) + 3);
        let (b_lo, b_hi) = ((k * 3) % 6, ((k * 3) % 6) + 1);
        let d1 = decisions[(k % 3) as usize];
        let d2 = decisions[((k + 1) % 3) as usize];
        let d3 = decisions[((k + 2) % 3) as usize];
        let text =
            format!("a={a_lo}-{a_hi}, b={b_lo}-{b_hi} -> {d1}\nb={b_lo} -> {d2}\n* -> {d3}\n");
        let fw = Firewall::parse(schema.clone(), &text).unwrap();

        for batch in BATCH_SIZES {
            let edits = edits_for(&fw, batch, k * 31 + batch as u64);
            assert_splice_agrees(&fw, &edits, &all, &format!("policy {k}, k={batch}"));
        }

        let flipped = fw.rules()[0].with_decision(fw.rules()[0].decision().inverted());
        let widened = fw.rules()[1].with_decision(fw.rules()[1].decision().inverted());
        let mixed = vec![
            Edit::Replace {
                index: 0,
                rule: fw.rules()[0].clone(), // no-op self-replacement
            },
            Edit::Replace {
                index: 0,
                rule: flipped,
            },
            Edit::Insert {
                index: 1,
                rule: widened,
            },
            Edit::Swap {
                first: 0,
                second: 1,
            },
            Edit::Remove { index: 1 },
        ];
        assert_splice_agrees(&fw, &mixed, &all, &format!("policy {k}, mixed batch"));
    }
}
