//! Offline stand-in for the `bytes` crate.
//!
//! Implements the slice of the API the workspace's wire formats use:
//! [`BytesMut`] as a growable little-endian writer, [`Bytes`] as a cheaply
//! cloneable, sliceable, consumable view, and the [`Buf`] / [`BufMut`]
//! traits carrying the fixed-width accessors.

use std::ops::Deref;
use std::sync::Arc;

/// Read-side cursor operations over a byte container.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Consumes and returns the next little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32;
    /// Consumes and returns the next little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64;
}

/// Write-side operations over a growable byte container.
pub trait BufMut {
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Length of the unread region.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the unread region (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u32_le(&mut self) -> u32 {
        let b: [u8; 4] = self[..4].try_into().expect("4 bytes");
        self.start += 4;
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let b: [u8; 8] = self[..8].try_into().expect("8 bytes");
        self.start += 8;
        u64::from_le_bytes(b)
    }
}

/// A growable byte buffer for building wire images.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_u32_le(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_slice() {
        let mut m = BytesMut::with_capacity(12);
        m.put_u32_le(7);
        m.put_u64_le(u64::MAX - 1);
        let mut b = m.freeze();
        assert_eq!(b.len(), 12);
        let cut = b.slice(0..4);
        assert_eq!(cut.len(), 4);
        assert_eq!(b.get_u32_le(), 7);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.remaining(), 0);
    }
}
