//! Offline stand-in for `criterion`.
//!
//! Implements the macro/API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter` —
//! as a small fixed-iteration timing harness that prints mean wall time
//! per benchmark. No statistics, plots, or saved baselines; the purpose is
//! that `cargo bench` compiles and emits comparable numbers hermetically.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A named benchmark point within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_owned())
    }
}

/// Drives timed iterations of one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, recording total elapsed wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = t.elapsed();
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_one(name, 10, f);
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = u32::try_from(n.max(1)).unwrap_or(u32::MAX);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_one(&id.into().0, self.sample_size, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.0, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing nothing extra; exists for API parity).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: u32, mut f: F) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b); // warm-up
    b.iters = samples;
    f(&mut b);
    let mean = b.elapsed / samples.max(1);
    println!("  {name}: {mean:?}/iter over {samples} iters");
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
