//! Offline stand-in for the `crossbeam` scoped-thread API, backed by
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Mirrors the call shape the workspace uses:
//!
//! ```ignore
//! crossbeam::thread::scope(|s| {
//!     s.spawn(|_| work());
//! })
//! .expect("no worker panicked");
//! ```
//!
//! As in crossbeam, a panicking child thread surfaces as an `Err` from
//! `scope` rather than tearing down the caller.

pub mod thread {
    use std::any::Any;

    /// A scope handle; `spawn` launches threads that may borrow from the
    /// enclosing stack frame.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// nested spawns work, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            inner.spawn(move || f(&Scope(inner)))
        }
    }

    /// Runs `f` with a scope in which borrowing scoped threads can be
    /// spawned; joins them all before returning.
    ///
    /// # Errors
    ///
    /// Returns the panic payload if `f` or any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope(s)))
        }))
    }
}

pub use thread::scope;
