//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the `parking_lot` API shape the workspace uses — `Mutex` and
//! `RwLock` whose lock methods return guards directly (no `Result`).
//! Poisoning is transparently recovered: a panicked holder does not wedge
//! other threads, matching parking_lot's behaviour.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
