//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` / `prop_compose!` macros, `Strategy` with
//! `prop_map`, integer-range and tuple strategies, `collection::vec`,
//! `bool::ANY`, `any::<T>()`, the `prop_assert*` family and
//! `prop_assume!`. Cases are sampled from a deterministic xoshiro256++
//! stream seeded per test name (override with `PROPTEST_SEED`); case
//! counts honour `ProptestConfig::with_cases` and the `PROPTEST_CASES`
//! environment variable. There is **no shrinking** — on failure the full
//! generated inputs are printed instead.

use std::fmt::Debug;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic generator feeding all strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Expands a 64-bit seed into generator state via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

// ---------------------------------------------------------------------
// Configuration and runner
// ---------------------------------------------------------------------

/// Per-block configuration, mirroring proptest's.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Marker returned by `prop_assume!` when a case is discarded.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Drives the case loop for one `proptest!` test. Used by the macro
/// expansion; not part of the public proptest API.
#[doc(hidden)]
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng, &mut String) -> Result<(), Rejected>,
{
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fnv1a(name.as_bytes()));
    let mut rng = TestRng::seed_from_u64(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    while accepted < config.cases {
        let mut desc = String::new();
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng, &mut desc)));
        match outcome {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(Rejected)) => {
                rejected += 1;
                assert!(
                    rejected <= 65_536,
                    "proptest '{name}': too many prop_assume! rejections"
                );
            }
            Err(payload) => {
                eprintln!(
                    "proptest '{name}': case {accepted} failed (seed {seed}); inputs: {desc}"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy wrapping a generation closure; backs `prop_compose!`.
#[derive(Debug)]
pub struct FnStrategy<F>(F);

impl<F> FnStrategy<F> {
    /// Wraps `f` as a strategy.
    pub fn new(f: F) -> FnStrategy<F> {
        FnStrategy(f)
    }
}

impl<T: Debug, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------
// String pattern strategies
// ---------------------------------------------------------------------

/// One atom of the supported regex subset.
#[derive(Debug, Clone)]
enum PatAtom {
    /// A literal character.
    Lit(char),
    /// Any printable character (`\PC`).
    Printable,
    /// A character class `[...]`, expanded to its members.
    Class(Vec<char>),
    /// A top-level alternation of literal strings `(a|b|)`.
    Alt(Vec<String>),
}

#[derive(Debug, Clone)]
struct Pattern {
    atoms: Vec<(PatAtom, usize, usize)>, // atom, min reps, max reps
}

impl Pattern {
    /// Parses the regex subset proptest-style string strategies use here:
    /// literals, `\PC`, `[...]` classes with ranges, `(a|b|)` literal
    /// alternations, and `{m,n}` repetition suffixes.
    fn parse(pattern: &str) -> Pattern {
        let mut chars = pattern.chars().peekable();
        let mut atoms: Vec<(PatAtom, usize, usize)> = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '\\' => match chars.next() {
                    Some('P') => {
                        assert_eq!(chars.next(), Some('C'), "only \\PC is supported");
                        PatAtom::Printable
                    }
                    Some(esc) => PatAtom::Lit(esc),
                    None => panic!("dangling escape in pattern {pattern:?}"),
                },
                '[' => {
                    let mut members = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        match chars.next().expect("unterminated class") {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let lo = prev.take().expect("range start");
                                let hi = chars.next().expect("range end");
                                for v in lo as u32..=hi as u32 {
                                    members.extend(char::from_u32(v));
                                }
                            }
                            m => {
                                if let Some(p) = prev.take() {
                                    members.push(p);
                                }
                                prev = Some(m);
                            }
                        }
                    }
                    if let Some(p) = prev {
                        members.push(p);
                    }
                    assert!(!members.is_empty(), "empty class in {pattern:?}");
                    PatAtom::Class(members)
                }
                '(' => {
                    let mut alts = vec![String::new()];
                    loop {
                        match chars.next().expect("unterminated group") {
                            ')' => break,
                            '|' => alts.push(String::new()),
                            m => alts.last_mut().expect("non-empty").push(m),
                        }
                    }
                    PatAtom::Alt(alts)
                }
                lit => PatAtom::Lit(lit),
            };
            // Optional {m,n} repetition suffix.
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut body = String::new();
                loop {
                    match chars.next().expect("unterminated repetition") {
                        '}' => break,
                        m => body.push(m),
                    }
                }
                let (a, b) = body.split_once(',').expect("{m,n} form");
                (
                    a.parse().expect("repetition lower bound"),
                    b.parse().expect("repetition upper bound"),
                )
            } else {
                (1, 1)
            };
            atoms.push((atom, lo, hi));
        }
        Pattern { atoms }
    }
}

/// A mostly-ASCII printable character, with occasional multi-byte ones so
/// parsers see non-ASCII input too.
fn printable_char(rng: &mut TestRng) -> char {
    const EXOTIC: [char; 6] = ['é', 'ß', '→', '日', '🦀', '\u{a0}'];
    if rng.below(20) == 0 {
        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
    } else {
        char::from_u32(0x20 + rng.below(0x7f - 0x20) as u32).expect("printable ASCII")
    }
}

/// String strategies from regex-subset patterns, as in proptest
/// (`text in "\\PC{0,120}"`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = Pattern::parse(self);
        let mut out = String::new();
        for (atom, lo, hi) in &pattern.atoms {
            let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..reps {
                match atom {
                    PatAtom::Lit(c) => out.push(*c),
                    PatAtom::Printable => out.push(printable_char(rng)),
                    PatAtom::Class(members) => {
                        out.push(members[rng.below(members.len() as u64) as usize]);
                    }
                    PatAtom::Alt(alts) => {
                        out.push_str(&alts[rng.below(alts.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Debug + Sized {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Default)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

pub mod bool {
    //! Boolean strategies (`prop::bool::ANY`).

    /// The uniform boolean strategy type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl crate::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut crate::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};

    /// A length distribution for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests; see the crate docs for the supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            (<$crate::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config = $config;
                $crate::run_cases(&__pt_config, stringify!($name), |__pt_rng, __pt_desc| {
                    $(
                        let __pt_val = $crate::Strategy::generate(&($strat), __pt_rng);
                        {
                            use ::core::fmt::Write as _;
                            let _ = ::core::write!(
                                __pt_desc,
                                "{} = {:?}; ",
                                stringify!($pat),
                                &__pt_val
                            );
                        }
                        let $pat = __pt_val;
                    )+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Declares a named composite strategy function.
#[macro_export]
macro_rules! prop_compose {
    ( $(#[$meta:meta])* $vis:vis fn $name:ident ( $($outer:tt)* )
      ( $($pat:pat in $strat:expr),+ $(,)? ) -> $out:ty $body:block ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $out> {
            $crate::FnStrategy::new(move |__pt_rng: &mut $crate::TestRng| -> $out {
                $(let $pat = $crate::Strategy::generate(&($strat), __pt_rng);)+
                $body
            })
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::core::assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::core::assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::core::assert_ne!($($t)*) };
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };

    pub mod prop {
        //! Strategy namespaces (`prop::collection`, `prop::bool`).
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        (0u32..10).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps((a, b) in (0u64..5, 0u64..=4), v in prop::collection::vec(small(), 0..4), flag in prop::bool::ANY) {
            prop_assert!(a < 5 && b <= 4);
            prop_assert!(v.len() < 4);
            for x in v {
                prop_assert_eq!(x % 2, 0);
            }
            let _ = flag;
        }

        #[test]
        fn assume_discards(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    prop_compose! {
        fn pair()(a in 0u8..3, b in 0u8..3) -> (u8, u8) { (a, b) }
    }

    proptest! {
        #[test]
        fn composed(p in pair(), n in any::<u32>()) {
            prop_assert!(p.0 < 3 && p.1 < 3);
            let _ = n;
        }
    }
}
