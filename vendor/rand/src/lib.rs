//! Offline stand-in for `rand` 0.10.
//!
//! Provides the API surface the workspace uses — `StdRng::seed_from_u64`,
//! `random_range` / `random_bool` / `random`, slice `choose` / `shuffle` —
//! over a deterministic xoshiro256++ generator (seeded via SplitMix64,
//! exactly as the xoshiro reference code recommends). The streams differ
//! from upstream `rand`'s ChaCha12 `StdRng`, but every consumer in this
//! workspace only relies on *determinism per seed*, not on specific
//! values.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator ("standard" distribution).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a uniform integer can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value in the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128) - (self.start as u128);
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                self.start + draw as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t; // full u64 domain
                }
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                lo + draw as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// The user-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random read access into slices (`rand`'s `IndexedRandom`).
pub trait IndexedRandom {
    /// The element type.
    type Item;
    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// Random mutation of slices (`rand`'s `SliceRandom`).
pub trait SliceRandom {
    /// Uniformly permutes the slice in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, seeded via
    /// SplitMix64. Deterministic per seed; not cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 state expansion, per the xoshiro reference code.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::{IndexedRandom, Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0..=5usize);
            assert!(w <= 5);
            let p: f64 = rng.random();
            assert!((0.0..1.0).contains(&p));
        }
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn choose_and_shuffle_cover_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3];
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
