//! Offline stand-in for `serde`.
//!
//! The workspace is built hermetically (no crates.io), and no code path
//! serializes through serde — JSON emitted by the bench harness is
//! hand-rolled. This crate re-exports no-op `Serialize` / `Deserialize`
//! derive macros so existing annotations compile unchanged. If a future
//! change needs real serialization, replace this stub with the real crate
//! (the manifest shape is identical).

pub use serde_derive::{Deserialize, Serialize};
