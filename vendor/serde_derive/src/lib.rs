//! Offline stand-in for `serde_derive`.
//!
//! This workspace is built in a hermetic environment with no access to
//! crates.io, and nothing in the tree actually serializes (there is no
//! `serde_json` consumer; all JSON output is hand-rolled). The derives
//! exist so `#[derive(Serialize, Deserialize)]` annotations keep
//! compiling; they expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
